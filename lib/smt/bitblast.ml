type repr = Rlit of int | Rvec of int array (* lsb first, DIMACS literals *)

type t = {
  sat : Sat.t;
  cache : repr Term.Tbl.t;
  term_vars : (int, Term.var * repr) Hashtbl.t; (* term var id -> bits *)
  ranges : (int * int) Term.Tbl.t;
  (* per translated term, the SAT variables allocated by its own (cache-miss)
     translation as the half-open range (lo, hi] — shared subterms hit the
     cache and record their vars under their own entry *)
  cone_cache : int array Term.Tbl.t;
  (* memoized full translation cones of top-level (asserted/guarded) terms *)
  true_lit : int;
  mutable n_clauses : int;
  mutable n_aux : int;
}

(* Per-domain memo counters, aggregated across contexts: scratch solver
   queries build a fresh context each (model determinism forbids reusing CNF
   between model-extracting queries), so per-context hit counts would vanish
   with the context. Long-lived incremental contexts accumulate into the
   same per-domain counters. *)
type memo_state = { mutable m_hits : int; mutable m_misses : int }

let memo_registry : memo_state list ref = ref []
let memo_mutex = Mutex.create ()

let memo_key =
  Domain.DLS.new_key (fun () ->
      Mutex.lock memo_mutex;
      let st = { m_hits = 0; m_misses = 0 } in
      memo_registry := st :: !memo_registry;
      Mutex.unlock memo_mutex;
      st)

let memo_stats () =
  let st = Domain.DLS.get memo_key in
  (st.m_hits, st.m_misses)

let aggregate_memo_stats () =
  Mutex.lock memo_mutex;
  let states = !memo_registry in
  Mutex.unlock memo_mutex;
  List.fold_left (fun (h, m) st -> (h + st.m_hits, m + st.m_misses)) (0, 0) states

let reset_memo_stats () =
  Mutex.lock memo_mutex;
  let states = !memo_registry in
  Mutex.unlock memo_mutex;
  List.iter
    (fun st ->
      st.m_hits <- 0;
      st.m_misses <- 0)
    states

let sat t = t.sat
let clauses_added t = t.n_clauses
let aux_vars t = t.n_aux
let cached_terms t = Term.Tbl.length t.cache

let clause t lits =
  t.n_clauses <- t.n_clauses + 1;
  Sat.add_clause t.sat lits

let fresh t =
  t.n_aux <- t.n_aux + 1;
  Sat.new_var t.sat

let create sat =
  let dummy =
    {
      sat;
      cache = Term.Tbl.create 256;
      term_vars = Hashtbl.create 64;
      ranges = Term.Tbl.create 256;
      cone_cache = Term.Tbl.create 64;
      true_lit = 0;
      n_clauses = 0;
      n_aux = 0;
    }
  in
  let tl = fresh dummy in
  let t = { dummy with true_lit = tl } in
  clause t [ tl ];
  t

(* --- boolean gates -------------------------------------------------------- *)

let lnot l = -l

let and2 t a b =
  if a = t.true_lit then b
  else if b = t.true_lit then a
  else if a = -t.true_lit || b = -t.true_lit then -t.true_lit
  else if a = b then a
  else if a = -b then -t.true_lit
  else begin
    let x = fresh t in
    clause t [ -x; a ];
    clause t [ -x; b ];
    clause t [ x; -a; -b ];
    x
  end

let or2 t a b = lnot (and2 t (lnot a) (lnot b))

let xor2 t a b =
  if a = t.true_lit then lnot b
  else if b = t.true_lit then lnot a
  else if a = -t.true_lit then b
  else if b = -t.true_lit then a
  else if a = b then -t.true_lit
  else if a = -b then t.true_lit
  else begin
    let x = fresh t in
    clause t [ -x; a; b ];
    clause t [ -x; -a; -b ];
    clause t [ x; -a; b ];
    clause t [ x; a; -b ];
    x
  end

let xnor2 t a b = lnot (xor2 t a b)

let mux t c a b =
  (* c ? a : b *)
  if c = t.true_lit then a
  else if c = -t.true_lit then b
  else if a = b then a
  else begin
    let x = fresh t in
    clause t [ -x; -c; a ];
    clause t [ -x; c; b ];
    clause t [ x; -c; -a ];
    clause t [ x; c; -b ];
    x
  end

let and_many t = function
  | [] -> t.true_lit
  | l :: ls -> List.fold_left (and2 t) l ls

let or_many t = function
  | [] -> -t.true_lit
  | l :: ls -> List.fold_left (or2 t) l ls

(* --- arithmetic circuits --------------------------------------------------- *)

let full_adder t a b cin =
  let sum = xor2 t (xor2 t a b) cin in
  let cout = or2 t (and2 t a b) (and2 t cin (xor2 t a b)) in
  (sum, cout)

(* returns (sum vector, carry out) *)
let adder t av bv cin =
  let w = Array.length av in
  let out = Array.make w 0 in
  let carry = ref cin in
  for i = 0 to w - 1 do
    let s, c = full_adder t av.(i) bv.(i) !carry in
    out.(i) <- s;
    carry := c
  done;
  (out, !carry)

let subtract t av bv =
  (* a + ~b + 1; carry-out = 1 iff a >= b (unsigned) *)
  adder t av (Array.map lnot bv) t.true_lit

let ult_lit t av bv =
  let _, carry = subtract t av bv in
  lnot carry

let slt_lit t av bv =
  let w = Array.length av in
  let av' = Array.copy av and bv' = Array.copy bv in
  av'.(w - 1) <- lnot av.(w - 1);
  bv'.(w - 1) <- lnot bv.(w - 1);
  ult_lit t av' bv'

let eq_vec_lit t av bv =
  and_many t (Array.to_list (Array.map2 (xnor2 t) av bv))

let multiplier t av bv =
  let w = Array.length av in
  let acc = ref (Array.make w (-t.true_lit)) in
  for i = 0 to w - 1 do
    (* partial product: (a << i) AND b_i, truncated to w bits *)
    let partial =
      Array.init w (fun j -> if j < i then -t.true_lit else and2 t av.(j - i) bv.(i))
    in
    acc := fst (adder t !acc partial (-t.true_lit))
  done;
  !acc

let is_zero_lit t av = lnot (or_many t (Array.to_list av))

(* Restoring long division. Returns (quotient, remainder) with the SMT-LIB
   division-by-zero convention applied. *)
let divider t av bv =
  let w = Array.length av in
  let q = Array.make w (-t.true_lit) in
  (* remainder register, one bit wider to absorb the shift *)
  let r = ref (Array.make (w + 1) (-t.true_lit)) in
  let b_ext = Array.append bv [| -t.true_lit |] in
  for i = w - 1 downto 0 do
    (* r = (r << 1) | a_i, dropping the top bit (always 0 here because the
       invariant r < b <= 2^w - 1 holds before the shift) *)
    let shifted = Array.init (w + 1) (fun j -> if j = 0 then av.(i) else !r.(j - 1)) in
    let diff, geq = subtract t shifted b_ext in
    q.(i) <- geq;
    r := Array.init (w + 1) (fun j -> mux t geq diff.(j) shifted.(j))
  done;
  let rem = Array.sub !r 0 w in
  let bz = is_zero_lit t bv in
  let quot_dz = Array.map (fun a_bit -> mux t bz t.true_lit a_bit) (Array.make w 0 |> Array.mapi (fun i _ -> q.(i))) in
  let rem_dz = Array.init w (fun i -> mux t bz av.(i) rem.(i)) in
  (quot_dz, rem_dz)

let shifter t ~kind av amount =
  let w = Array.length av in
  (* number of stages: smallest s with 2^s >= w *)
  let rec stages s = if 1 lsl s >= w then s else stages (s + 1) in
  let s = stages 0 in
  let fill =
    match kind with
    | `Shl | `Lshr -> -t.true_lit
    | `Ashr -> av.(w - 1)
  in
  let step vec k bit =
    let shift = 1 lsl k in
    Array.init w (fun i ->
        let src =
          match kind with
          | `Shl -> if i >= shift then vec.(i - shift) else -t.true_lit
          | `Lshr | `Ashr -> if i + shift < w then vec.(i + shift) else fill
        in
        mux t bit src vec.(i))
  in
  let result = ref av in
  for k = 0 to min (s - 1) (Array.length amount - 1) do
    result := step !result k amount.(k)
  done;
  (* if any amount bit at position >= s is set, the shift overflows *)
  let high_bits =
    Array.to_list amount |> List.filteri (fun i _ -> i >= s)
  in
  let overflow = or_many t high_bits in
  Array.map (fun bit -> mux t overflow fill bit) !result

(* --- term translation ------------------------------------------------------ *)

let rec translate t (term : Term.t) : repr =
  let ms = Domain.DLS.get memo_key in
  match Term.Tbl.find_opt t.cache term with
  | Some r ->
      ms.m_hits <- ms.m_hits + 1;
      r
  | None ->
      ms.m_misses <- ms.m_misses + 1;
      let lo = Sat.num_vars t.sat in
      let r = translate_uncached t term in
      Term.Tbl.replace t.ranges term (lo, Sat.num_vars t.sat);
      Term.Tbl.replace t.cache term r;
      r

and bvec t term =
  match translate t term with
  | Rvec v -> v
  | Rlit _ -> raise (Term.Sort_error "bitblast: expected bitvector")

and blit t term =
  match translate t term with
  | Rlit l -> l
  | Rvec _ -> raise (Term.Sort_error "bitblast: expected boolean")

and translate_uncached t (term : Term.t) : repr =
  match term.Term.node with
  | True -> Rlit t.true_lit
  | False -> Rlit (-t.true_lit)
  | Const bv ->
      Rvec
        (Array.init (Bv.width bv) (fun i ->
             if Bv.bit bv i then t.true_lit else -t.true_lit))
  | Var v -> (
      match Hashtbl.find_opt t.term_vars v.id with
      | Some (_, r) -> r
      | None ->
          let r =
            match v.sort with
            | Term.Bool -> Rlit (Sat.new_var t.sat)
            | Term.Bitvec w -> Rvec (Array.init w (fun _ -> Sat.new_var t.sat))
          in
          Hashtbl.replace t.term_vars v.id (v, r);
          r)
  | Not a -> Rlit (lnot (blit t a))
  | And (a, b) -> Rlit (and2 t (blit t a) (blit t b))
  | Or (a, b) -> Rlit (or2 t (blit t a) (blit t b))
  | Ite (c, a, b) -> (
      let cl = blit t c in
      match translate t a, translate t b with
      | Rlit x, Rlit y -> Rlit (mux t cl x y)
      | Rvec x, Rvec y -> Rvec (Array.map2 (mux t cl) x y)
      | _ -> raise (Term.Sort_error "bitblast: ite branches"))
  | Eq (a, b) -> (
      match translate t a, translate t b with
      | Rlit x, Rlit y -> Rlit (xnor2 t x y)
      | Rvec x, Rvec y -> Rlit (eq_vec_lit t x y)
      | _ -> raise (Term.Sort_error "bitblast: eq operands"))
  | Ult (a, b) -> Rlit (ult_lit t (bvec t a) (bvec t b))
  | Slt (a, b) -> Rlit (slt_lit t (bvec t a) (bvec t b))
  | Ule (a, b) -> Rlit (lnot (ult_lit t (bvec t b) (bvec t a)))
  | Sle (a, b) -> Rlit (lnot (slt_lit t (bvec t b) (bvec t a)))
  | Add (a, b) -> Rvec (fst (adder t (bvec t a) (bvec t b) (-t.true_lit)))
  | Sub (a, b) -> Rvec (fst (subtract t (bvec t a) (bvec t b)))
  | Mul (a, b) -> Rvec (multiplier t (bvec t a) (bvec t b))
  | Udiv (a, b) -> Rvec (fst (divider t (bvec t a) (bvec t b)))
  | Urem (a, b) -> Rvec (snd (divider t (bvec t a) (bvec t b)))
  | Bnot a -> Rvec (Array.map lnot (bvec t a))
  | Band (a, b) -> Rvec (Array.map2 (and2 t) (bvec t a) (bvec t b))
  | Bor (a, b) -> Rvec (Array.map2 (or2 t) (bvec t a) (bvec t b))
  | Bxor (a, b) -> Rvec (Array.map2 (xor2 t) (bvec t a) (bvec t b))
  | Shl (a, b) -> Rvec (shifter t ~kind:`Shl (bvec t a) (bvec t b))
  | Lshr (a, b) -> Rvec (shifter t ~kind:`Lshr (bvec t a) (bvec t b))
  | Ashr (a, b) -> Rvec (shifter t ~kind:`Ashr (bvec t a) (bvec t b))
  | Concat (hi, lo) -> Rvec (Array.append (bvec t lo) (bvec t hi))
  | Extract (hi, lo, a) -> Rvec (Array.sub (bvec t a) lo (hi - lo + 1))

let lit_of t term = blit t term

(* --- translation cones ----------------------------------------------------- *)

let children (term : Term.t) =
  match term.Term.node with
  | Term.True | Term.False | Term.Const _ | Term.Var _ -> []
  | Term.Not a | Term.Bnot a | Term.Extract (_, _, a) -> [ a ]
  | Term.And (a, b)
  | Term.Or (a, b)
  | Term.Eq (a, b)
  | Term.Ult (a, b)
  | Term.Slt (a, b)
  | Term.Ule (a, b)
  | Term.Sle (a, b)
  | Term.Add (a, b)
  | Term.Sub (a, b)
  | Term.Mul (a, b)
  | Term.Udiv (a, b)
  | Term.Urem (a, b)
  | Term.Band (a, b)
  | Term.Bor (a, b)
  | Term.Bxor (a, b)
  | Term.Shl (a, b)
  | Term.Lshr (a, b)
  | Term.Ashr (a, b)
  | Term.Concat (a, b) -> [ a; b ]
  | Term.Ite (c, a, b) -> [ c; a; b ]

(* All SAT variables in [term]'s translation: the union of the own-range of
   every node in its DAG. A node translated as a cache hit inside some other
   term's translation still has its own range entry from that first
   translation, so the union is exactly the variables the term's CNF
   mentions. Ranges nest (a parent's range spans its freshly-translated
   children), hence the sort-and-merge. Memoized per term; sound only after
   the term has been fully translated in this context. *)
let cone_of t term =
  match Term.Tbl.find_opt t.cone_cache term with
  | Some a -> a
  | None ->
      let visited = Term.Tbl.create 64 in
      let spans = ref [] in
      let rec walk tm =
        if not (Term.Tbl.mem visited tm) then begin
          Term.Tbl.replace visited tm ();
          (match Term.Tbl.find_opt t.ranges tm with
          | Some (lo, hi) when hi > lo -> spans := (lo, hi) :: !spans
          | _ -> ());
          List.iter walk (children tm)
        end
      in
      walk term;
      let spans =
        List.sort (fun (a, _) (b, _) -> compare a b) !spans
      in
      let merged =
        List.fold_left
          (fun acc (lo, hi) ->
            match acc with
            | (plo, phi) :: rest when lo <= phi ->
                (plo, max phi hi) :: rest
            | _ -> (lo, hi) :: acc)
          [] spans
      in
      let merged = List.rev merged (* ascending: allocation order *) in
      let n = List.fold_left (fun n (lo, hi) -> n + hi - lo) 0 merged in
      let arr = Array.make n 0 in
      let i = ref 0 in
      List.iter
        (fun (lo, hi) ->
          for v = lo + 1 to hi do
            arr.(!i) <- v;
            incr i
          done)
        merged;
      Term.Tbl.replace t.cone_cache term arr;
      arr

let cone_vars t terms =
  let mark = Bytes.make (Sat.num_vars t.sat + 1) '\000' in
  let buf = ref (Array.make 256 0) in
  let n = ref 0 in
  let push v =
    if !n = Array.length !buf then begin
      let b = Array.make (2 * !n) 0 in
      Array.blit !buf 0 b 0 !n;
      buf := b
    end;
    !buf.(!n) <- v;
    incr n
  in
  List.iter
    (fun tm ->
      Array.iter
        (fun v ->
          if Bytes.get mark v = '\000' then begin
            Bytes.set mark v '\001';
            push v
          end)
        (cone_of t tm))
    terms;
  Array.sub !buf 0 !n

let assert_true t term =
  match term.Term.node with
  | Term.True -> ()
  | Term.False -> clause t []
  | _ -> clause t [ blit t term ]

let extract_model t =
  Hashtbl.fold
    (fun _ (var, r) model ->
      match r with
      | Rlit l ->
          Model.add_bool var (Sat.lit_value t.sat l) model
      | Rvec bits ->
          let w = Array.length bits in
          let value = ref 0L in
          for i = w - 1 downto 0 do
            value := Int64.shift_left !value 1;
            if Sat.lit_value t.sat bits.(i) then
              value := Int64.logor !value 1L
          done;
          Model.add_bv var (Bv.make ~width:w !value) model)
    t.term_vars Model.empty
