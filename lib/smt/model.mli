(** Assignments of concrete values to term variables, and term evaluation.

    A model maps variable ids to values. Evaluation is total: variables
    absent from the model default to [false] / zero, matching the solver's
    convention that unconstrained variables may take any value. *)

type value = Vbool of bool | Vbv of Bv.t

type t

val empty : t
val add : Term.var -> value -> t -> t
val add_bv : Term.var -> Bv.t -> t -> t
val add_bool : Term.var -> bool -> t -> t
val of_list : (Term.var * value) list -> t
val find : t -> Term.var -> value option
val bindings : t -> (Term.var * value) list
(** In ascending variable-id order. *)

val value_sort : value -> Term.sort
val pp_value : Format.formatter -> value -> unit

val eval : t -> Term.t -> value
(** Evaluate a term under the model. Raises [Term.Sort_error] on ill-sorted
    terms. *)

val eval_bool : t -> Term.t -> bool
val eval_bv : t -> Term.t -> Bv.t
val satisfies : t -> Term.t list -> bool
(** Do all the given boolean terms evaluate to [true]? *)

val pp : Format.formatter -> t -> unit
