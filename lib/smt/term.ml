type sort = Bool | Bitvec of int

type var = { id : int; name : string; sort : sort }

type t =
  | True
  | False
  | Const of Bv.t
  | Var of var
  | Not of t
  | And of t * t
  | Or of t * t
  | Ite of t * t * t
  | Eq of t * t
  | Ult of t * t
  | Slt of t * t
  | Ule of t * t
  | Sle of t * t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Udiv of t * t
  | Urem of t * t
  | Bnot of t
  | Band of t * t
  | Bor of t * t
  | Bxor of t * t
  | Shl of t * t
  | Lshr of t * t
  | Ashr of t * t
  | Concat of t * t
  | Extract of int * int * t

exception Sort_error of string

let sort_error fmt = Format.kasprintf (fun s -> raise (Sort_error s)) fmt

let sort_equal a b =
  match a, b with
  | Bool, Bool -> true
  | Bitvec w1, Bitvec w2 -> w1 = w2
  | Bool, Bitvec _ | Bitvec _, Bool -> false

let pp_sort fmt = function
  | Bool -> Format.pp_print_string fmt "Bool"
  | Bitvec w -> Format.fprintf fmt "Bv%d" w

(* One counter per domain: parallel search workers seed their counter from
   the sequential base (Search sets it per task), so ids never depend on
   which domain ran which shard. *)
let fresh_counter = Domain.DLS.new_key (fun () -> ref 0)

let fresh_var ?(name = "v") sort =
  let c = Domain.DLS.get fresh_counter in
  incr c;
  { id = !c; name; sort }

let reset_fresh_counter () = Domain.DLS.get fresh_counter := 0
let set_fresh_counter n = Domain.DLS.get fresh_counter := n
let fresh_counter_value () = !(Domain.DLS.get fresh_counter)

let rec sort_of = function
  | True | False | Not _ | And _ | Or _ | Eq _ | Ult _ | Slt _ | Ule _
  | Sle _ ->
      Bool
  | Const bv -> Bitvec (Bv.width bv)
  | Var v -> v.sort
  | Ite (_, a, _) -> sort_of a
  | Add (a, _) | Sub (a, _) | Mul (a, _) | Udiv (a, _) | Urem (a, _)
  | Band (a, _) | Bor (a, _) | Bxor (a, _) | Shl (a, _) | Lshr (a, _)
  | Ashr (a, _) | Bnot a ->
      sort_of a
  | Concat (a, b) -> (
      match sort_of a, sort_of b with
      | Bitvec w1, Bitvec w2 -> Bitvec (w1 + w2)
      | _ -> sort_error "concat of non-bitvectors")
  | Extract (hi, lo, _) -> Bitvec (hi - lo + 1)

let width_of t =
  match sort_of t with
  | Bitvec w -> w
  | Bool -> sort_error "expected a bitvector, got a boolean"

let tru = True
let fls = False
let bool b = if b then True else False
let const bv = Const bv
let int ~width v = Const (Bv.of_int ~width v)
let var v = Var v

let check_bv_pair name a b =
  match sort_of a, sort_of b with
  | Bitvec w1, Bitvec w2 when w1 = w2 -> w1
  | sa, sb -> sort_error "%s: incompatible sorts %a and %a" name pp_sort sa pp_sort sb

let check_bool name t =
  match sort_of t with
  | Bool -> ()
  | s -> sort_error "%s: expected Bool, got %a" name pp_sort s

let not_ = function
  | True -> False
  | False -> True
  | Not t -> t
  | t ->
      check_bool "not" t;
      Not t

let and_ a b =
  match a, b with
  | True, t | t, True ->
      check_bool "and" t;
      t
  | False, _ | _, False -> False
  | _ when a = b -> a
  | _ ->
      check_bool "and" a;
      check_bool "and" b;
      And (a, b)

let or_ a b =
  match a, b with
  | False, t | t, False ->
      check_bool "or" t;
      t
  | True, _ | _, True -> True
  | _ when a = b -> a
  | _ ->
      check_bool "or" a;
      check_bool "or" b;
      Or (a, b)

let and_l ts = List.fold_left and_ True ts
let or_l ts = List.fold_left or_ False ts
let implies a b = or_ (not_ a) b

let ite c a b =
  if not (sort_equal (sort_of a) (sort_of b)) then
    sort_error "ite: branch sorts differ";
  match c with
  | True -> a
  | False -> b
  | _ when a = b -> a
  | _ -> (
      check_bool "ite" c;
      match a, b with
      | True, False -> c
      | False, True -> not_ c
      | _ -> Ite (c, a, b))

let eq a b =
  if not (sort_equal (sort_of a) (sort_of b)) then
    sort_error "eq: operand sorts differ (%a vs %a)" pp_sort (sort_of a)
      pp_sort (sort_of b);
  match a, b with
  | _ when a = b -> True
  | Const x, Const y -> bool (Bv.equal x y)
  | True, t | t, True -> t
  | False, t | t, False -> not_ t
  | _ -> Eq (a, b)

let neq a b = not_ (eq a b)

let is_const = function True | False | Const _ -> true | _ -> false

let cmp name fold node a b =
  let _w = check_bv_pair name a b in
  match a, b with
  | Const x, Const y -> bool (fold x y)
  | _ -> node a b

let ult a b =
  match a, b with
  | _ when a = b && not (is_const a) -> False
  | Const x, _ when Bv.equal x (Bv.ones (Bv.width x)) -> False
  | _, Const y when Bv.equal y (Bv.zero (Bv.width y)) -> False
  | _ -> cmp "ult" Bv.ult (fun a b -> Ult (a, b)) a b

let slt a b =
  if a = b && not (is_const a) then False
  else cmp "slt" Bv.slt (fun a b -> Slt (a, b)) a b

let ule a b =
  if a = b && not (is_const a) then True
  else cmp "ule" Bv.ule (fun a b -> Ule (a, b)) a b

let sle a b =
  if a = b && not (is_const a) then True
  else cmp "sle" Bv.sle (fun a b -> Sle (a, b)) a b

let ugt a b = ult b a
let uge a b = ule b a
let sgt a b = slt b a
let sge a b = sle b a

let is_zero = function Const bv -> Bv.equal bv (Bv.zero (Bv.width bv)) | _ -> false
let is_one = function Const bv -> Bv.equal bv (Bv.one (Bv.width bv)) | _ -> false
let is_ones = function Const bv -> Bv.equal bv (Bv.ones (Bv.width bv)) | _ -> false

let add a b =
  let _ = check_bv_pair "add" a b in
  match a, b with
  | Const x, Const y -> Const (Bv.add x y)
  | t, z when is_zero z -> t
  | z, t when is_zero z -> t
  | _ -> Add (a, b)

let sub a b =
  let w = check_bv_pair "sub" a b in
  match a, b with
  | Const x, Const y -> Const (Bv.sub x y)
  | t, z when is_zero z -> t
  | _ when a = b -> Const (Bv.zero w)
  | _ -> Sub (a, b)

let mul a b =
  let w = check_bv_pair "mul" a b in
  match a, b with
  | Const x, Const y -> Const (Bv.mul x y)
  | _, z when is_zero z -> Const (Bv.zero w)
  | z, _ when is_zero z -> Const (Bv.zero w)
  | t, o when is_one o -> t
  | o, t when is_one o -> t
  | _ -> Mul (a, b)

let udiv a b =
  let _ = check_bv_pair "udiv" a b in
  match a, b with
  | Const x, Const y -> Const (Bv.udiv x y)
  | t, o when is_one o -> t
  | _ -> Udiv (a, b)

let urem a b =
  let _ = check_bv_pair "urem" a b in
  match a, b with
  | Const x, Const y -> Const (Bv.urem x y)
  | _ -> Urem (a, b)

let bnot = function
  | Const x -> Const (Bv.lognot x)
  | Bnot t -> t
  | t ->
      let _ = width_of t in
      Bnot t

let neg t =
  match t with
  | Const x -> Const (Bv.neg x)
  | _ ->
      let w = width_of t in
      sub (Const (Bv.zero w)) t

let band a b =
  let w = check_bv_pair "band" a b in
  match a, b with
  | Const x, Const y -> Const (Bv.logand x y)
  | _, z when is_zero z -> Const (Bv.zero w)
  | z, _ when is_zero z -> Const (Bv.zero w)
  | t, o when is_ones o -> t
  | o, t when is_ones o -> t
  | _ when a = b -> a
  | _ -> Band (a, b)

let bor a b =
  let w = check_bv_pair "bor" a b in
  match a, b with
  | Const x, Const y -> Const (Bv.logor x y)
  | t, z when is_zero z -> t
  | z, t when is_zero z -> t
  | _, o when is_ones o -> Const (Bv.ones w)
  | o, _ when is_ones o -> Const (Bv.ones w)
  | _ when a = b -> a
  | _ -> Bor (a, b)

let bxor a b =
  let w = check_bv_pair "bxor" a b in
  match a, b with
  | Const x, Const y -> Const (Bv.logxor x y)
  | t, z when is_zero z -> t
  | z, t when is_zero z -> t
  | _ when a = b -> Const (Bv.zero w)
  | _ -> Bxor (a, b)

let shift name fold node a b =
  let _ = check_bv_pair name a b in
  match a, b with
  | Const x, Const y -> Const (fold x y)
  | t, z when is_zero z -> t
  | _ -> node a b

let shl a b = shift "shl" Bv.shl (fun a b -> Shl (a, b)) a b
let lshr a b = shift "lshr" Bv.lshr (fun a b -> Lshr (a, b)) a b
let ashr a b = shift "ashr" Bv.ashr (fun a b -> Ashr (a, b)) a b

let rec concat a b =
  let wa = width_of a and wb = width_of b in
  if wa + wb > 64 then sort_error "concat: combined width %d exceeds 64" (wa + wb);
  match a, b with
  | Const x, Const y -> Const (Bv.concat x y)
  | Extract (h1, l1, x), Extract (h2, l2, y)
    when x = y && l1 = h2 + 1 ->
      (* adjacent slices of the same term fuse back together *)
      extract_node ~hi:h1 ~lo:l2 x
  | Extract (_h1, l1, x), Concat ((Extract (h2, _l2, y) as e2), rest)
    when x = y && l1 = h2 + 1 && wa + width_of e2 <= 64 ->
      concat (concat a e2) rest
  | _ -> Concat (a, b)

and extract_node ~hi ~lo t =
  let w = width_of t in
  if lo = 0 && hi = w - 1 then t
  else
    match t with
    | Const x -> Const (Bv.extract ~hi ~lo x)
    | _ -> Extract (hi, lo, t)

let concat_l = function
  | [] -> invalid_arg "Term.concat_l: empty list"
  | hd :: tl -> List.fold_left concat hd tl

let rec extract ~hi ~lo t =
  let w = width_of t in
  if lo < 0 || hi < lo || hi >= w then
    sort_error "extract: bad range [%d..%d] for width %d" hi lo w;
  if lo = 0 && hi = w - 1 then t
  else
    match t with
    | Const x -> Const (Bv.extract ~hi ~lo x)
    | Extract (_, lo', inner) -> extract ~hi:(hi + lo') ~lo:(lo + lo') inner
    | Concat (a, b) ->
        let wb = width_of b in
        if hi < wb then extract ~hi ~lo b
        else if lo >= wb then extract ~hi:(hi - wb) ~lo:(lo - wb) a
        else Extract (hi, lo, t)
    | Lshr (x, Const c) when Int64.unsigned_compare (Bv.value c) 64L < 0 ->
        (* bits [hi..lo] of (x >> c) are bits [hi+c..lo+c] of x when they
           exist, zeros otherwise *)
        let c = Int64.to_int (Bv.value c) in
        if hi + c < w then extract ~hi:(hi + c) ~lo:(lo + c) x
        else if lo + c >= w then Const (Bv.zero (hi - lo + 1))
        else Extract (hi, lo, t)
    | _ -> Extract (hi, lo, t)

let zero_extend ~by t =
  if by < 0 then invalid_arg "Term.zero_extend: negative"
  else if by = 0 then t
  else
    let w = width_of t in
    if w + by > 64 then sort_error "zero_extend past 64 bits"
    else concat (Const (Bv.zero by)) t

let sign_extend ~by t =
  if by < 0 then invalid_arg "Term.sign_extend: negative"
  else if by = 0 then t
  else
    let w = width_of t in
    if w + by > 64 then sort_error "sign_extend past 64 bits"
    else
      match t with
      | Const x -> Const (Bv.sign_extend ~by x)
      | _ ->
          let sign = extract ~hi:(w - 1) ~lo:(w - 1) t in
          let high =
            ite
              (eq sign (Const (Bv.one 1)))
              (Const (Bv.ones by))
              (Const (Bv.zero by))
          in
          concat high t

let resize_unsigned ~width t =
  let w = width_of t in
  if width = w then t
  else if width > w then zero_extend ~by:(width - w) t
  else extract ~hi:(width - 1) ~lo:0 t

let const_value = function Const bv -> Some bv | _ -> None

let bool_value = function
  | True -> Some true
  | False -> Some false
  | _ -> None

let rec fold_vars f t acc =
  match t with
  | True | False | Const _ -> acc
  | Var v -> f v acc
  | Not a | Bnot a | Extract (_, _, a) -> fold_vars f a acc
  | And (a, b) | Or (a, b) | Eq (a, b) | Ult (a, b) | Slt (a, b)
  | Ule (a, b) | Sle (a, b) | Add (a, b) | Sub (a, b) | Mul (a, b)
  | Udiv (a, b) | Urem (a, b) | Band (a, b) | Bor (a, b) | Bxor (a, b)
  | Shl (a, b) | Lshr (a, b) | Ashr (a, b) | Concat (a, b) ->
      fold_vars f b (fold_vars f a acc)
  | Ite (c, a, b) -> fold_vars f b (fold_vars f a (fold_vars f c acc))

module Int_set = Set.Make (Int)

let vars t =
  let tbl = Hashtbl.create 16 in
  let add v () = if not (Hashtbl.mem tbl v.id) then Hashtbl.add tbl v.id v in
  fold_vars add t ();
  Hashtbl.fold (fun _ v acc -> v :: acc) tbl []
  |> List.sort (fun a b -> Stdlib.compare a.id b.id)

let var_ids t =
  fold_vars (fun v acc -> Int_set.add v.id acc) t Int_set.empty
  |> Int_set.elements

let mentions t v =
  let exception Found in
  try
    fold_vars (fun v' () -> if v'.id = v.id then raise Found) t ();
    false
  with Found -> true

let rec size = function
  | True | False | Const _ | Var _ -> 1
  | Not a | Bnot a | Extract (_, _, a) -> 1 + size a
  | And (a, b) | Or (a, b) | Eq (a, b) | Ult (a, b) | Slt (a, b)
  | Ule (a, b) | Sle (a, b) | Add (a, b) | Sub (a, b) | Mul (a, b)
  | Udiv (a, b) | Urem (a, b) | Band (a, b) | Bor (a, b) | Bxor (a, b)
  | Shl (a, b) | Lshr (a, b) | Ashr (a, b) | Concat (a, b) ->
      1 + size a + size b
  | Ite (c, a, b) -> 1 + size c + size a + size b

let rec subst f t =
  match t with
  | True | False | Const _ -> t
  | Var v -> (
      match f v with
      | None -> t
      | Some t' ->
          if not (sort_equal (sort_of t') v.sort) then
            sort_error "subst: sort mismatch for %s" v.name;
          t')
  | Not a -> not_ (subst f a)
  | And (a, b) -> and_ (subst f a) (subst f b)
  | Or (a, b) -> or_ (subst f a) (subst f b)
  | Ite (c, a, b) -> ite (subst f c) (subst f a) (subst f b)
  | Eq (a, b) -> eq (subst f a) (subst f b)
  | Ult (a, b) -> ult (subst f a) (subst f b)
  | Slt (a, b) -> slt (subst f a) (subst f b)
  | Ule (a, b) -> ule (subst f a) (subst f b)
  | Sle (a, b) -> sle (subst f a) (subst f b)
  | Add (a, b) -> add (subst f a) (subst f b)
  | Sub (a, b) -> sub (subst f a) (subst f b)
  | Mul (a, b) -> mul (subst f a) (subst f b)
  | Udiv (a, b) -> udiv (subst f a) (subst f b)
  | Urem (a, b) -> urem (subst f a) (subst f b)
  | Bnot a -> bnot (subst f a)
  | Band (a, b) -> band (subst f a) (subst f b)
  | Bor (a, b) -> bor (subst f a) (subst f b)
  | Bxor (a, b) -> bxor (subst f a) (subst f b)
  | Shl (a, b) -> shl (subst f a) (subst f b)
  | Lshr (a, b) -> lshr (subst f a) (subst f b)
  | Ashr (a, b) -> ashr (subst f a) (subst f b)
  | Concat (a, b) -> concat (subst f a) (subst f b)
  | Extract (hi, lo, a) -> extract ~hi ~lo (subst f a)

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b
let hash (t : t) = Hashtbl.hash t

let rec pp fmt t =
  let bin op a b = Format.fprintf fmt "(%s %a %a)" op pp a pp b in
  match t with
  | True -> Format.pp_print_string fmt "true"
  | False -> Format.pp_print_string fmt "false"
  | Const bv -> Bv.pp fmt bv
  | Var v -> Format.fprintf fmt "%s#%d" v.name v.id
  | Not a -> Format.fprintf fmt "(not %a)" pp a
  | And (a, b) -> bin "and" a b
  | Or (a, b) -> bin "or" a b
  | Ite (c, a, b) -> Format.fprintf fmt "(ite %a %a %a)" pp c pp a pp b
  | Eq (a, b) -> bin "=" a b
  | Ult (a, b) -> bin "u<" a b
  | Slt (a, b) -> bin "s<" a b
  | Ule (a, b) -> bin "u<=" a b
  | Sle (a, b) -> bin "s<=" a b
  | Add (a, b) -> bin "+" a b
  | Sub (a, b) -> bin "-" a b
  | Mul (a, b) -> bin "*" a b
  | Udiv (a, b) -> bin "udiv" a b
  | Urem (a, b) -> bin "urem" a b
  | Bnot a -> Format.fprintf fmt "(bnot %a)" pp a
  | Band (a, b) -> bin "&" a b
  | Bor (a, b) -> bin "|" a b
  | Bxor (a, b) -> bin "^" a b
  | Shl (a, b) -> bin "<<" a b
  | Lshr (a, b) -> bin ">>u" a b
  | Ashr (a, b) -> bin ">>s" a b
  | Concat (a, b) -> bin "++" a b
  | Extract (hi, lo, a) -> Format.fprintf fmt "%a[%d:%d]" pp a hi lo

let to_string t = Format.asprintf "%a" pp t

let alpha_key terms =
  let table : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let canon v =
    let id =
      match Hashtbl.find_opt table v.id with
      | Some id -> id
      | None ->
          let id = Hashtbl.length table in
          Hashtbl.replace table v.id id;
          id
    in
    Some (Var { id; name = "c"; sort = v.sort })
  in
  String.concat ";" (List.map (fun t -> to_string (subst canon t)) terms)
