type sort = Bool | Bitvec of int

type var = { id : int; name : string; sort : sort }

type t = { tid : int; node : node; hkey : int }

and node =
  | True
  | False
  | Const of Bv.t
  | Var of var
  | Not of t
  | And of t * t
  | Or of t * t
  | Ite of t * t * t
  | Eq of t * t
  | Ult of t * t
  | Slt of t * t
  | Ule of t * t
  | Sle of t * t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Udiv of t * t
  | Urem of t * t
  | Bnot of t
  | Band of t * t
  | Bor of t * t
  | Bxor of t * t
  | Shl of t * t
  | Lshr of t * t
  | Ashr of t * t
  | Concat of t * t
  | Extract of int * int * t

exception Sort_error of string

let sort_error fmt = Format.kasprintf (fun s -> raise (Sort_error s)) fmt

let sort_equal a b =
  match a, b with
  | Bool, Bool -> true
  | Bitvec w1, Bitvec w2 -> w1 = w2
  | Bool, Bitvec _ | Bitvec _, Bool -> false

let pp_sort fmt = function
  | Bool -> Format.pp_print_string fmt "Bool"
  | Bitvec w -> Format.fprintf fmt "Bv%d" w

(* One counter per domain: parallel search workers seed their counter from
   the sequential base (Search sets it per task), so ids never depend on
   which domain ran which shard. *)
let fresh_counter = Domain.DLS.new_key (fun () -> ref 0)

let fresh_var ?(name = "v") sort =
  let c = Domain.DLS.get fresh_counter in
  incr c;
  { id = !c; name; sort }

let reset_fresh_counter () = Domain.DLS.get fresh_counter := 0
let set_fresh_counter n = Domain.DLS.get fresh_counter := n
let fresh_counter_value () = !(Domain.DLS.get fresh_counter)

(* --- interning ------------------------------------------------------------

   Node ids ([tid]) come from one process-wide counter that is never reset:
   terms flow between domains (client predicates are built on the main
   domain and queried from workers), so per-domain ids would collide in
   tid-keyed memo tables. The intern tables themselves are per-domain
   ([Domain.DLS], like the fresh-variable counter) so construction never
   contends on a lock; a term built on another domain simply isn't shared
   with this domain's structurally equal copy, which costs speed, never
   correctness. *)

let sharing = Atomic.make true
let set_sharing b = Atomic.set sharing b
let sharing_enabled () = Atomic.get sharing

let tid_counter = Atomic.make 0
let next_tid () = Atomic.fetch_and_add tid_counter 1

type intern_state = {
  buckets : (int, t list ref) Hashtbl.t; (* hkey -> interned nodes *)
  var_ids_memo : (int, int list) Hashtbl.t; (* tid -> sorted var ids *)
  mutable s_hits : int; (* constructions answered from the table *)
  mutable s_created : int; (* nodes physically allocated *)
  mutable s_work : int;
      (* nodes visited by structural equal/compare and by the var-id
         traversal — the walks sharing short-circuits or memoizes away *)
}

let intern_registry : intern_state list ref = ref []
let intern_mutex = Mutex.create ()

let intern_key =
  Domain.DLS.new_key (fun () ->
      Mutex.lock intern_mutex;
      let st =
        {
          buckets = Hashtbl.create 4096;
          var_ids_memo = Hashtbl.create 1024;
          s_hits = 0;
          s_created = 0;
          s_work = 0;
        }
      in
      intern_registry := st :: !intern_registry;
      Mutex.unlock intern_mutex;
      st)

let intern_state () = Domain.DLS.get intern_key

let intern_stats () =
  let st = intern_state () in
  (st.s_hits, st.s_created)

let registered_intern_states () =
  Mutex.lock intern_mutex;
  let states = !intern_registry in
  Mutex.unlock intern_mutex;
  states

let aggregate_intern_stats () =
  List.fold_left
    (fun (h, c) st -> (h + st.s_hits, c + st.s_created))
    (0, 0)
    (registered_intern_states ())

let structural_work () =
  List.fold_left (fun w st -> w + st.s_work) 0 (registered_intern_states ())

let clear_interning () =
  List.iter
    (fun st ->
      Hashtbl.reset st.buckets;
      Hashtbl.reset st.var_ids_memo;
      st.s_hits <- 0;
      st.s_created <- 0;
      st.s_work <- 0)
    (registered_intern_states ())

(* --- structural hash ------------------------------------------------------ *)

(* [hkey] is a deterministic function of the structure alone (no ids, no
   addresses), computed in O(1) at construction from the children's stored
   keys. It doubles as {!hash} and as the first-stage filter of the
   structural {!equal}. *)

let mix h k = (((h lsl 5) + h) lxor k) land 0x3FFFFFFF

let sort_hash = function Bool -> 0 | Bitvec w -> w + 1

let var_hash v = mix (mix v.id (Hashtbl.hash v.name)) (sort_hash v.sort)

let hash_node = function
  | True -> 0x1a2b
  | False -> 0x3c4d
  | Const bv ->
      mix (mix 3 (Bv.width bv)) (Int64.to_int (Bv.value bv) land 0x3FFFFFFF)
  | Var v -> mix 4 (var_hash v)
  | Not a -> mix 5 a.hkey
  | And (a, b) -> mix (mix 6 a.hkey) b.hkey
  | Or (a, b) -> mix (mix 7 a.hkey) b.hkey
  | Ite (c, a, b) -> mix (mix (mix 8 c.hkey) a.hkey) b.hkey
  | Eq (a, b) -> mix (mix 9 a.hkey) b.hkey
  | Ult (a, b) -> mix (mix 10 a.hkey) b.hkey
  | Slt (a, b) -> mix (mix 11 a.hkey) b.hkey
  | Ule (a, b) -> mix (mix 12 a.hkey) b.hkey
  | Sle (a, b) -> mix (mix 13 a.hkey) b.hkey
  | Add (a, b) -> mix (mix 14 a.hkey) b.hkey
  | Sub (a, b) -> mix (mix 15 a.hkey) b.hkey
  | Mul (a, b) -> mix (mix 16 a.hkey) b.hkey
  | Udiv (a, b) -> mix (mix 17 a.hkey) b.hkey
  | Urem (a, b) -> mix (mix 18 a.hkey) b.hkey
  | Bnot a -> mix 19 a.hkey
  | Band (a, b) -> mix (mix 20 a.hkey) b.hkey
  | Bor (a, b) -> mix (mix 21 a.hkey) b.hkey
  | Bxor (a, b) -> mix (mix 22 a.hkey) b.hkey
  | Shl (a, b) -> mix (mix 23 a.hkey) b.hkey
  | Lshr (a, b) -> mix (mix 24 a.hkey) b.hkey
  | Ashr (a, b) -> mix (mix 25 a.hkey) b.hkey
  | Concat (a, b) -> mix (mix 26 a.hkey) b.hkey
  | Extract (hi, lo, a) -> mix (mix (mix 27 hi) lo) a.hkey

(* --- equality and ordering ------------------------------------------------

   Both ignore [tid] and [hkey] (beyond the hkey fast-reject), so their
   answers match what [Stdlib.compare]/[(=)] gave on the old plain ADT:
   canonical orders, cache keys and digests are byte-identical whether
   sharing is on or off, and whichever domain built the operands. *)

let var_equal v w =
  v == w || (v.id = w.id && String.equal v.name w.name && sort_equal v.sort w.sort)

let rec equal_rec st a b =
  a == b
  ||
  (st.s_work <- st.s_work + 1;
   a.hkey = b.hkey && node_equal st a.node b.node)

and node_equal st n1 n2 =
  match n1, n2 with
  | True, True | False, False -> true
  | Const x, Const y -> Bv.equal x y
  | Var v, Var w -> var_equal v w
  | Not a, Not b | Bnot a, Bnot b -> equal_rec st a b
  | And (a1, b1), And (a2, b2)
  | Or (a1, b1), Or (a2, b2)
  | Eq (a1, b1), Eq (a2, b2)
  | Ult (a1, b1), Ult (a2, b2)
  | Slt (a1, b1), Slt (a2, b2)
  | Ule (a1, b1), Ule (a2, b2)
  | Sle (a1, b1), Sle (a2, b2)
  | Add (a1, b1), Add (a2, b2)
  | Sub (a1, b1), Sub (a2, b2)
  | Mul (a1, b1), Mul (a2, b2)
  | Udiv (a1, b1), Udiv (a2, b2)
  | Urem (a1, b1), Urem (a2, b2)
  | Band (a1, b1), Band (a2, b2)
  | Bor (a1, b1), Bor (a2, b2)
  | Bxor (a1, b1), Bxor (a2, b2)
  | Shl (a1, b1), Shl (a2, b2)
  | Lshr (a1, b1), Lshr (a2, b2)
  | Ashr (a1, b1), Ashr (a2, b2)
  | Concat (a1, b1), Concat (a2, b2) ->
      equal_rec st a1 a2 && equal_rec st b1 b2
  | Ite (c1, a1, b1), Ite (c2, a2, b2) ->
      equal_rec st c1 c2 && equal_rec st a1 a2 && equal_rec st b1 b2
  | Extract (h1, l1, a), Extract (h2, l2, b) ->
      h1 = h2 && l1 = l2 && equal_rec st a b
  | _ -> false

let equal a b = a == b || equal_rec (intern_state ()) a b

(* Constructor rank replicating [Stdlib.compare] on the old ADT: the
   constant constructors ([True], [False]) sort below every block, blocks
   by declaration order. *)
let rank = function
  | True -> 0
  | False -> 1
  | Const _ -> 2
  | Var _ -> 3
  | Not _ -> 4
  | And _ -> 5
  | Or _ -> 6
  | Ite _ -> 7
  | Eq _ -> 8
  | Ult _ -> 9
  | Slt _ -> 10
  | Ule _ -> 11
  | Sle _ -> 12
  | Add _ -> 13
  | Sub _ -> 14
  | Mul _ -> 15
  | Udiv _ -> 16
  | Urem _ -> 17
  | Bnot _ -> 18
  | Band _ -> 19
  | Bor _ -> 20
  | Bxor _ -> 21
  | Shl _ -> 22
  | Lshr _ -> 23
  | Ashr _ -> 24
  | Concat _ -> 25
  | Extract _ -> 26

(* [Bv.t] is a { width; value : int64 } record, so the old polymorphic
   compare ordered by width first, then by the boxed int64's (signed)
   comparison. *)
let bv_compare x y =
  let c = Int.compare (Bv.width x) (Bv.width y) in
  if c <> 0 then c else Int64.compare (Bv.value x) (Bv.value y)

let sort_compare a b =
  match a, b with
  | Bool, Bool -> 0
  | Bool, Bitvec _ -> -1
  | Bitvec _, Bool -> 1
  | Bitvec w1, Bitvec w2 -> Int.compare w1 w2

let var_compare v w =
  if v == w then 0
  else
    let c = Int.compare v.id w.id in
    if c <> 0 then c
    else
      let c = String.compare v.name w.name in
      if c <> 0 then c else sort_compare v.sort w.sort

let rec compare_rec st a b =
  if a == b then 0
  else begin
    st.s_work <- st.s_work + 1;
    let ra = rank a.node and rb = rank b.node in
    if ra <> rb then Int.compare ra rb
    else
      match a.node, b.node with
      | True, True | False, False -> 0
      | Const x, Const y -> bv_compare x y
      | Var v, Var w -> var_compare v w
      | Not x, Not y | Bnot x, Bnot y -> compare_rec st x y
      | And (a1, b1), And (a2, b2)
      | Or (a1, b1), Or (a2, b2)
      | Eq (a1, b1), Eq (a2, b2)
      | Ult (a1, b1), Ult (a2, b2)
      | Slt (a1, b1), Slt (a2, b2)
      | Ule (a1, b1), Ule (a2, b2)
      | Sle (a1, b1), Sle (a2, b2)
      | Add (a1, b1), Add (a2, b2)
      | Sub (a1, b1), Sub (a2, b2)
      | Mul (a1, b1), Mul (a2, b2)
      | Udiv (a1, b1), Udiv (a2, b2)
      | Urem (a1, b1), Urem (a2, b2)
      | Band (a1, b1), Band (a2, b2)
      | Bor (a1, b1), Bor (a2, b2)
      | Bxor (a1, b1), Bxor (a2, b2)
      | Shl (a1, b1), Shl (a2, b2)
      | Lshr (a1, b1), Lshr (a2, b2)
      | Ashr (a1, b1), Ashr (a2, b2)
      | Concat (a1, b1), Concat (a2, b2) ->
          let c = compare_rec st a1 a2 in
          if c <> 0 then c else compare_rec st b1 b2
      | Ite (c1, a1, b1), Ite (c2, a2, b2) ->
          let c = compare_rec st c1 c2 in
          if c <> 0 then c
          else
            let c = compare_rec st a1 a2 in
            if c <> 0 then c else compare_rec st b1 b2
      | Extract (h1, l1, x), Extract (h2, l2, y) ->
          let c = Int.compare h1 h2 in
          if c <> 0 then c
          else
            let c = Int.compare l1 l2 in
            if c <> 0 then c else compare_rec st x y
      | _ -> 0 (* unreachable: ranks are equal only on matching heads *)
  end

let compare a b = if a == b then 0 else compare_rec (intern_state ()) a b

let hash t = t.hkey

(* Shallow structural match used by the intern probe: children are compared
   physically (they are themselves interned when built locally), variables
   and constants by value. A miss on foreign-built children just allocates
   an unshared node, which everything tolerates. *)
let shallow_equal n1 n2 =
  match n1, n2 with
  | True, True | False, False -> true
  | Const x, Const y -> Bv.equal x y
  | Var v, Var w -> var_equal v w
  | Not a, Not b | Bnot a, Bnot b -> a == b
  | And (a1, b1), And (a2, b2)
  | Or (a1, b1), Or (a2, b2)
  | Eq (a1, b1), Eq (a2, b2)
  | Ult (a1, b1), Ult (a2, b2)
  | Slt (a1, b1), Slt (a2, b2)
  | Ule (a1, b1), Ule (a2, b2)
  | Sle (a1, b1), Sle (a2, b2)
  | Add (a1, b1), Add (a2, b2)
  | Sub (a1, b1), Sub (a2, b2)
  | Mul (a1, b1), Mul (a2, b2)
  | Udiv (a1, b1), Udiv (a2, b2)
  | Urem (a1, b1), Urem (a2, b2)
  | Band (a1, b1), Band (a2, b2)
  | Bor (a1, b1), Bor (a2, b2)
  | Bxor (a1, b1), Bxor (a2, b2)
  | Shl (a1, b1), Shl (a2, b2)
  | Lshr (a1, b1), Lshr (a2, b2)
  | Ashr (a1, b1), Ashr (a2, b2)
  | Concat (a1, b1), Concat (a2, b2) ->
      a1 == a2 && b1 == b2
  | Ite (c1, a1, b1), Ite (c2, a2, b2) -> c1 == c2 && a1 == a2 && b1 == b2
  | Extract (h1, l1, a), Extract (h2, l2, b) -> h1 = h2 && l1 = l2 && a == b
  | _ -> false

let mk node =
  let hkey = hash_node node in
  let st = intern_state () in
  if not (Atomic.get sharing) then begin
    st.s_created <- st.s_created + 1;
    { tid = next_tid (); node; hkey }
  end
  else
    match Hashtbl.find_opt st.buckets hkey with
    | Some bucket -> (
        match List.find_opt (fun u -> shallow_equal u.node node) !bucket with
        | Some u ->
            st.s_hits <- st.s_hits + 1;
            u
        | None ->
            let u = { tid = next_tid (); node; hkey } in
            st.s_created <- st.s_created + 1;
            bucket := u :: !bucket;
            u)
    | None ->
        let u = { tid = next_tid (); node; hkey } in
        st.s_created <- st.s_created + 1;
        Hashtbl.add st.buckets hkey (ref [ u ]);
        u

(* --- sorts ---------------------------------------------------------------- *)

let rec sort_of t =
  match t.node with
  | True | False | Not _ | And _ | Or _ | Eq _ | Ult _ | Slt _ | Ule _
  | Sle _ ->
      Bool
  | Const bv -> Bitvec (Bv.width bv)
  | Var v -> v.sort
  | Ite (_, a, _) -> sort_of a
  | Add (a, _) | Sub (a, _) | Mul (a, _) | Udiv (a, _) | Urem (a, _)
  | Band (a, _) | Bor (a, _) | Bxor (a, _) | Shl (a, _) | Lshr (a, _)
  | Ashr (a, _) | Bnot a ->
      sort_of a
  | Concat (a, b) -> (
      match sort_of a, sort_of b with
      | Bitvec w1, Bitvec w2 -> Bitvec (w1 + w2)
      | _ -> sort_error "concat of non-bitvectors")
  | Extract (hi, lo, _) -> Bitvec (hi - lo + 1)

let width_of t =
  match sort_of t with
  | Bitvec w -> w
  | Bool -> sort_error "expected a bitvector, got a boolean"

(* --- smart constructors --------------------------------------------------- *)

let tru = mk True
let fls = mk False
let bool b = if b then tru else fls
let const bv = mk (Const bv)
let int ~width v = const (Bv.of_int ~width v)
let var v = mk (Var v)

let check_bv_pair name a b =
  match sort_of a, sort_of b with
  | Bitvec w1, Bitvec w2 when w1 = w2 -> w1
  | sa, sb -> sort_error "%s: incompatible sorts %a and %a" name pp_sort sa pp_sort sb

let check_bool name t =
  match sort_of t with
  | Bool -> ()
  | s -> sort_error "%s: expected Bool, got %a" name pp_sort s

let not_ t =
  match t.node with
  | True -> fls
  | False -> tru
  | Not u -> u
  | _ ->
      check_bool "not" t;
      mk (Not t)

let and_ a b =
  match a.node, b.node with
  | True, _ ->
      check_bool "and" b;
      b
  | _, True ->
      check_bool "and" a;
      a
  | False, _ | _, False -> fls
  | _ when equal a b -> a
  | _ ->
      check_bool "and" a;
      check_bool "and" b;
      mk (And (a, b))

let or_ a b =
  match a.node, b.node with
  | False, _ ->
      check_bool "or" b;
      b
  | _, False ->
      check_bool "or" a;
      a
  | True, _ | _, True -> tru
  | _ when equal a b -> a
  | _ ->
      check_bool "or" a;
      check_bool "or" b;
      mk (Or (a, b))

let and_l ts = List.fold_left and_ tru ts
let or_l ts = List.fold_left or_ fls ts
let implies a b = or_ (not_ a) b

let ite c a b =
  if not (sort_equal (sort_of a) (sort_of b)) then
    sort_error "ite: branch sorts differ";
  match c.node with
  | True -> a
  | False -> b
  | _ ->
      if equal a b then a
      else begin
        check_bool "ite" c;
        match a.node, b.node with
        | True, False -> c
        | False, True -> not_ c
        | _ -> mk (Ite (c, a, b))
      end

let eq a b =
  if not (sort_equal (sort_of a) (sort_of b)) then
    sort_error "eq: operand sorts differ (%a vs %a)" pp_sort (sort_of a)
      pp_sort (sort_of b);
  if equal a b then tru
  else
    match a.node, b.node with
    | Const x, Const y -> bool (Bv.equal x y)
    | True, _ -> b
    | _, True -> a
    | False, _ -> not_ b
    | _, False -> not_ a
    | _ -> mk (Eq (a, b))

let neq a b = not_ (eq a b)

let is_const t = match t.node with True | False | Const _ -> true | _ -> false

let cmp name fold node_of a b =
  let _w = check_bv_pair name a b in
  match a.node, b.node with
  | Const x, Const y -> bool (fold x y)
  | _ -> mk (node_of a b)

let ult a b =
  if equal a b && not (is_const a) then fls
  else
    match a.node, b.node with
    | Const x, _ when Bv.equal x (Bv.ones (Bv.width x)) -> fls
    | _, Const y when Bv.equal y (Bv.zero (Bv.width y)) -> fls
    | _ -> cmp "ult" Bv.ult (fun a b -> Ult (a, b)) a b

let slt a b =
  if equal a b && not (is_const a) then fls
  else cmp "slt" Bv.slt (fun a b -> Slt (a, b)) a b

let ule a b =
  if equal a b && not (is_const a) then tru
  else cmp "ule" Bv.ule (fun a b -> Ule (a, b)) a b

let sle a b =
  if equal a b && not (is_const a) then tru
  else cmp "sle" Bv.sle (fun a b -> Sle (a, b)) a b

let ugt a b = ult b a
let uge a b = ule b a
let sgt a b = slt b a
let sge a b = sle b a

let is_zero t =
  match t.node with Const bv -> Bv.equal bv (Bv.zero (Bv.width bv)) | _ -> false

let is_one t =
  match t.node with Const bv -> Bv.equal bv (Bv.one (Bv.width bv)) | _ -> false

let is_ones t =
  match t.node with Const bv -> Bv.equal bv (Bv.ones (Bv.width bv)) | _ -> false

let add a b =
  let _ = check_bv_pair "add" a b in
  match a.node, b.node with
  | Const x, Const y -> const (Bv.add x y)
  | _, _ when is_zero b -> a
  | _, _ when is_zero a -> b
  | _ -> mk (Add (a, b))

let sub a b =
  let w = check_bv_pair "sub" a b in
  match a.node, b.node with
  | Const x, Const y -> const (Bv.sub x y)
  | _, _ when is_zero b -> a
  | _ when equal a b -> const (Bv.zero w)
  | _ -> mk (Sub (a, b))

let mul a b =
  let w = check_bv_pair "mul" a b in
  match a.node, b.node with
  | Const x, Const y -> const (Bv.mul x y)
  | _, _ when is_zero b -> const (Bv.zero w)
  | _, _ when is_zero a -> const (Bv.zero w)
  | _, _ when is_one b -> a
  | _, _ when is_one a -> b
  | _ -> mk (Mul (a, b))

let udiv a b =
  let _ = check_bv_pair "udiv" a b in
  match a.node, b.node with
  | Const x, Const y -> const (Bv.udiv x y)
  | _, _ when is_one b -> a
  | _ -> mk (Udiv (a, b))

let urem a b =
  let _ = check_bv_pair "urem" a b in
  match a.node, b.node with
  | Const x, Const y -> const (Bv.urem x y)
  | _ -> mk (Urem (a, b))

let bnot t =
  match t.node with
  | Const x -> const (Bv.lognot x)
  | Bnot u -> u
  | _ ->
      let _ = width_of t in
      mk (Bnot t)

let neg t =
  match t.node with
  | Const x -> const (Bv.neg x)
  | _ ->
      let w = width_of t in
      sub (const (Bv.zero w)) t

let band a b =
  let w = check_bv_pair "band" a b in
  match a.node, b.node with
  | Const x, Const y -> const (Bv.logand x y)
  | _, _ when is_zero b -> const (Bv.zero w)
  | _, _ when is_zero a -> const (Bv.zero w)
  | _, _ when is_ones b -> a
  | _, _ when is_ones a -> b
  | _ when equal a b -> a
  | _ -> mk (Band (a, b))

let bor a b =
  let w = check_bv_pair "bor" a b in
  match a.node, b.node with
  | Const x, Const y -> const (Bv.logor x y)
  | _, _ when is_zero b -> a
  | _, _ when is_zero a -> b
  | _, _ when is_ones b -> const (Bv.ones w)
  | _, _ when is_ones a -> const (Bv.ones w)
  | _ when equal a b -> a
  | _ -> mk (Bor (a, b))

let bxor a b =
  let w = check_bv_pair "bxor" a b in
  match a.node, b.node with
  | Const x, Const y -> const (Bv.logxor x y)
  | _, _ when is_zero b -> a
  | _, _ when is_zero a -> b
  | _ when equal a b -> const (Bv.zero w)
  | _ -> mk (Bxor (a, b))

let shift name fold node_of a b =
  let _ = check_bv_pair name a b in
  match a.node, b.node with
  | Const x, Const y -> const (fold x y)
  | _, _ when is_zero b -> a
  | _ -> mk (node_of a b)

let shl a b = shift "shl" Bv.shl (fun a b -> Shl (a, b)) a b
let lshr a b = shift "lshr" Bv.lshr (fun a b -> Lshr (a, b)) a b
let ashr a b = shift "ashr" Bv.ashr (fun a b -> Ashr (a, b)) a b

let rec concat a b =
  let wa = width_of a and wb = width_of b in
  if wa + wb > 64 then sort_error "concat: combined width %d exceeds 64" (wa + wb);
  match a.node, b.node with
  | Const x, Const y -> const (Bv.concat x y)
  | Extract (h1, l1, x), Extract (h2, l2, y) when equal x y && l1 = h2 + 1 ->
      (* adjacent slices of the same term fuse back together *)
      extract_node ~hi:h1 ~lo:l2 x
  | ( Extract (_h1, l1, x),
      Concat (({ node = Extract (h2, _l2, y); _ } as e2), rest) )
    when equal x y && l1 = h2 + 1 && wa + width_of e2 <= 64 ->
      concat (concat a e2) rest
  | _ -> mk (Concat (a, b))

and extract_node ~hi ~lo t =
  let w = width_of t in
  if lo = 0 && hi = w - 1 then t
  else
    match t.node with
    | Const x -> const (Bv.extract ~hi ~lo x)
    | _ -> mk (Extract (hi, lo, t))

let concat_l = function
  | [] -> invalid_arg "Term.concat_l: empty list"
  | hd :: tl -> List.fold_left concat hd tl

let rec extract ~hi ~lo t =
  let w = width_of t in
  if lo < 0 || hi < lo || hi >= w then
    sort_error "extract: bad range [%d..%d] for width %d" hi lo w;
  if lo = 0 && hi = w - 1 then t
  else
    match t.node with
    | Const x -> const (Bv.extract ~hi ~lo x)
    | Extract (_, lo', inner) -> extract ~hi:(hi + lo') ~lo:(lo + lo') inner
    | Concat (a, b) ->
        let wb = width_of b in
        if hi < wb then extract ~hi ~lo b
        else if lo >= wb then extract ~hi:(hi - wb) ~lo:(lo - wb) a
        else mk (Extract (hi, lo, t))
    | Lshr (x, { node = Const c; _ })
      when Int64.unsigned_compare (Bv.value c) 64L < 0 ->
        (* bits [hi..lo] of (x >> c) are bits [hi+c..lo+c] of x when they
           exist, zeros otherwise *)
        let c = Int64.to_int (Bv.value c) in
        if hi + c < w then extract ~hi:(hi + c) ~lo:(lo + c) x
        else if lo + c >= w then const (Bv.zero (hi - lo + 1))
        else mk (Extract (hi, lo, t))
    | _ -> mk (Extract (hi, lo, t))

let zero_extend ~by t =
  if by < 0 then invalid_arg "Term.zero_extend: negative"
  else if by = 0 then t
  else
    let w = width_of t in
    if w + by > 64 then sort_error "zero_extend past 64 bits"
    else concat (const (Bv.zero by)) t

let sign_extend ~by t =
  if by < 0 then invalid_arg "Term.sign_extend: negative"
  else if by = 0 then t
  else
    let w = width_of t in
    if w + by > 64 then sort_error "sign_extend past 64 bits"
    else
      match t.node with
      | Const x -> const (Bv.sign_extend ~by x)
      | _ ->
          let sign = extract ~hi:(w - 1) ~lo:(w - 1) t in
          let high =
            ite
              (eq sign (const (Bv.one 1)))
              (const (Bv.ones by))
              (const (Bv.zero by))
          in
          concat high t

let resize_unsigned ~width t =
  let w = width_of t in
  if width = w then t
  else if width > w then zero_extend ~by:(width - w) t
  else extract ~hi:(width - 1) ~lo:0 t

let const_value t = match t.node with Const bv -> Some bv | _ -> None

let bool_value t =
  match t.node with True -> Some true | False -> Some false | _ -> None

(* --- traversals ----------------------------------------------------------- *)

let rec fold_vars f t acc =
  match t.node with
  | True | False | Const _ -> acc
  | Var v -> f v acc
  | Not a | Bnot a | Extract (_, _, a) -> fold_vars f a acc
  | And (a, b) | Or (a, b) | Eq (a, b) | Ult (a, b) | Slt (a, b)
  | Ule (a, b) | Sle (a, b) | Add (a, b) | Sub (a, b) | Mul (a, b)
  | Udiv (a, b) | Urem (a, b) | Band (a, b) | Bor (a, b) | Bxor (a, b)
  | Shl (a, b) | Lshr (a, b) | Ashr (a, b) | Concat (a, b) ->
      fold_vars f b (fold_vars f a acc)
  | Ite (c, a, b) -> fold_vars f b (fold_vars f a (fold_vars f c acc))

module Int_set = Set.Make (Int)

let vars t =
  let tbl = Hashtbl.create 16 in
  let add v () = if not (Hashtbl.mem tbl v.id) then Hashtbl.add tbl v.id v in
  fold_vars add t ();
  Hashtbl.fold (fun _ v acc -> v :: acc) tbl []
  |> List.sort (fun a b -> Stdlib.compare a.id b.id)

(* The traversal behind [var_ids], with every node visit charged to the
   structural-work counter: with sharing on the per-tid memo answers repeat
   queries without walking, so the visits counted here are exactly the work
   interning removes from the predicate/negate/differentFrom layers. *)
let compute_var_ids t =
  let st = intern_state () in
  let rec go t acc =
    st.s_work <- st.s_work + 1;
    match t.node with
    | True | False | Const _ -> acc
    | Var v -> Int_set.add v.id acc
    | Not a | Bnot a | Extract (_, _, a) -> go a acc
    | And (a, b) | Or (a, b) | Eq (a, b) | Ult (a, b) | Slt (a, b)
    | Ule (a, b) | Sle (a, b) | Add (a, b) | Sub (a, b) | Mul (a, b)
    | Udiv (a, b) | Urem (a, b) | Band (a, b) | Bor (a, b) | Bxor (a, b)
    | Shl (a, b) | Lshr (a, b) | Ashr (a, b) | Concat (a, b) ->
        go b (go a acc)
    | Ite (c, a, b) -> go b (go a (go c acc))
  in
  Int_set.elements (go t Int_set.empty)

let var_ids t =
  if Atomic.get sharing then begin
    let st = intern_state () in
    match Hashtbl.find_opt st.var_ids_memo t.tid with
    | Some ids -> ids
    | None ->
        let ids = compute_var_ids t in
        Hashtbl.replace st.var_ids_memo t.tid ids;
        ids
  end
  else compute_var_ids t

let mentions t v =
  let exception Found in
  try
    fold_vars (fun v' () -> if v'.id = v.id then raise Found) t ();
    false
  with Found -> true

let rec size t =
  match t.node with
  | True | False | Const _ | Var _ -> 1
  | Not a | Bnot a | Extract (_, _, a) -> 1 + size a
  | And (a, b) | Or (a, b) | Eq (a, b) | Ult (a, b) | Slt (a, b)
  | Ule (a, b) | Sle (a, b) | Add (a, b) | Sub (a, b) | Mul (a, b)
  | Udiv (a, b) | Urem (a, b) | Band (a, b) | Bor (a, b) | Bxor (a, b)
  | Shl (a, b) | Lshr (a, b) | Ashr (a, b) | Concat (a, b) ->
      1 + size a + size b
  | Ite (c, a, b) -> 1 + size c + size a + size b

let rec subst f t =
  match t.node with
  | True | False | Const _ -> t
  | Var v -> (
      match f v with
      | None -> t
      | Some t' ->
          if not (sort_equal (sort_of t') v.sort) then
            sort_error "subst: sort mismatch for %s" v.name;
          t')
  | Not a -> not_ (subst f a)
  | And (a, b) -> and_ (subst f a) (subst f b)
  | Or (a, b) -> or_ (subst f a) (subst f b)
  | Ite (c, a, b) -> ite (subst f c) (subst f a) (subst f b)
  | Eq (a, b) -> eq (subst f a) (subst f b)
  | Ult (a, b) -> ult (subst f a) (subst f b)
  | Slt (a, b) -> slt (subst f a) (subst f b)
  | Ule (a, b) -> ule (subst f a) (subst f b)
  | Sle (a, b) -> sle (subst f a) (subst f b)
  | Add (a, b) -> add (subst f a) (subst f b)
  | Sub (a, b) -> sub (subst f a) (subst f b)
  | Mul (a, b) -> mul (subst f a) (subst f b)
  | Udiv (a, b) -> udiv (subst f a) (subst f b)
  | Urem (a, b) -> urem (subst f a) (subst f b)
  | Bnot a -> bnot (subst f a)
  | Band (a, b) -> band (subst f a) (subst f b)
  | Bor (a, b) -> bor (subst f a) (subst f b)
  | Bxor (a, b) -> bxor (subst f a) (subst f b)
  | Shl (a, b) -> shl (subst f a) (subst f b)
  | Lshr (a, b) -> lshr (subst f a) (subst f b)
  | Ashr (a, b) -> ashr (subst f a) (subst f b)
  | Concat (a, b) -> concat (subst f a) (subst f b)
  | Extract (hi, lo, a) -> extract ~hi ~lo (subst f a)

(* --- printing ------------------------------------------------------------- *)

let rec pp fmt t =
  let bin op a b = Format.fprintf fmt "(%s %a %a)" op pp a pp b in
  match t.node with
  | True -> Format.pp_print_string fmt "true"
  | False -> Format.pp_print_string fmt "false"
  | Const bv -> Bv.pp fmt bv
  | Var v -> Format.fprintf fmt "%s#%d" v.name v.id
  | Not a -> Format.fprintf fmt "(not %a)" pp a
  | And (a, b) -> bin "and" a b
  | Or (a, b) -> bin "or" a b
  | Ite (c, a, b) -> Format.fprintf fmt "(ite %a %a %a)" pp c pp a pp b
  | Eq (a, b) -> bin "=" a b
  | Ult (a, b) -> bin "u<" a b
  | Slt (a, b) -> bin "s<" a b
  | Ule (a, b) -> bin "u<=" a b
  | Sle (a, b) -> bin "s<=" a b
  | Add (a, b) -> bin "+" a b
  | Sub (a, b) -> bin "-" a b
  | Mul (a, b) -> bin "*" a b
  | Udiv (a, b) -> bin "udiv" a b
  | Urem (a, b) -> bin "urem" a b
  | Bnot a -> Format.fprintf fmt "(bnot %a)" pp a
  | Band (a, b) -> bin "&" a b
  | Bor (a, b) -> bin "|" a b
  | Bxor (a, b) -> bin "^" a b
  | Shl (a, b) -> bin "<<" a b
  | Lshr (a, b) -> bin ">>u" a b
  | Ashr (a, b) -> bin ">>s" a b
  | Concat (a, b) -> bin "++" a b
  | Extract (hi, lo, a) -> Format.fprintf fmt "%a[%d:%d]" pp a hi lo

let to_string t = Format.asprintf "%a" pp t

let alpha_key terms =
  let table : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let canon v =
    let id =
      match Hashtbl.find_opt table v.id with
      | Some id -> id
      | None ->
          let id = Hashtbl.length table in
          Hashtbl.replace table v.id id;
          id
    in
    Some (var { id; name = "c"; sort = v.sort })
  in
  String.concat ";" (List.map (fun t -> to_string (subst canon t)) terms)

(* --- term-keyed tables, re-interning, dedup ------------------------------- *)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash t = t.hkey
end)

let rebuild t =
  let memo = Tbl.create 64 in
  let rec go t =
    match Tbl.find_opt memo t with
    | Some u -> u
    | None ->
        let u =
          match t.node with
          | True -> tru
          | False -> fls
          | Const bv -> const bv
          | Var v -> var v
          | Not a -> not_ (go a)
          | And (a, b) -> and_ (go a) (go b)
          | Or (a, b) -> or_ (go a) (go b)
          | Ite (c, a, b) -> ite (go c) (go a) (go b)
          | Eq (a, b) -> eq (go a) (go b)
          | Ult (a, b) -> ult (go a) (go b)
          | Slt (a, b) -> slt (go a) (go b)
          | Ule (a, b) -> ule (go a) (go b)
          | Sle (a, b) -> sle (go a) (go b)
          | Add (a, b) -> add (go a) (go b)
          | Sub (a, b) -> sub (go a) (go b)
          | Mul (a, b) -> mul (go a) (go b)
          | Udiv (a, b) -> udiv (go a) (go b)
          | Urem (a, b) -> urem (go a) (go b)
          | Bnot a -> bnot (go a)
          | Band (a, b) -> band (go a) (go b)
          | Bor (a, b) -> bor (go a) (go b)
          | Bxor (a, b) -> bxor (go a) (go b)
          | Shl (a, b) -> shl (go a) (go b)
          | Lshr (a, b) -> lshr (go a) (go b)
          | Ashr (a, b) -> ashr (go a) (go b)
          | Concat (a, b) -> concat (go a) (go b)
          | Extract (hi, lo, a) -> extract ~hi ~lo (go a)
        in
        Tbl.replace memo t u;
        u
  in
  go t

let dedup = function
  | ([] | [ _ ]) as ts -> ts
  | ts ->
      let seen = Tbl.create 16 in
      List.filter
        (fun t ->
          if Tbl.mem seen t then false
          else begin
            Tbl.replace seen t ();
            true
          end)
        ts
