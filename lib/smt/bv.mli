(** Fixed-width bitvector values (widths 1..64).

    Values are kept normalized: the representation is an [int64] whose bits
    above [width] are always zero. All arithmetic is modular in the given
    width, matching SMT-LIB QF_BV semantics (including the division-by-zero
    conventions: [udiv x 0 = ones], [urem x 0 = x]). *)

type t = private { width : int; value : int64 }

val make : width:int -> int64 -> t
(** [make ~width v] truncates [v] to [width] bits. Raises [Invalid_argument]
    unless [1 <= width <= 64]. *)

val of_int : width:int -> int -> t
val zero : int -> t
val one : int -> t
val ones : int -> t
(** All bits set, i.e. the maximum unsigned value of the width. *)

val width : t -> int
val value : t -> int64
val to_int : t -> int
(** Unsigned value as an OCaml [int]. Raises [Invalid_argument] if it does
    not fit in 62 bits. *)

val to_signed_int64 : t -> int64
(** Sign-extended value. *)

val equal : t -> t -> bool
val compare_unsigned : t -> t -> int
val compare_signed : t -> t -> int

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val udiv : t -> t -> t
val urem : t -> t -> t
val neg : t -> t

val lognot : t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t

val shl : t -> t -> t
(** Shift left; amounts [>= width] yield zero. *)

val lshr : t -> t -> t
val ashr : t -> t -> t

val ult : t -> t -> bool
val ule : t -> t -> bool
val slt : t -> t -> bool
val sle : t -> t -> bool

val extract : hi:int -> lo:int -> t -> t
(** Bits [hi..lo] inclusive; result width is [hi - lo + 1]. *)

val concat : t -> t -> t
(** [concat hi lo]: [hi] occupies the most significant bits. Raises if the
    combined width exceeds 64. *)

val zero_extend : by:int -> t -> t
val sign_extend : by:int -> t -> t

val bit : t -> int -> bool
(** [bit v i] is bit [i] (0 = least significant). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
