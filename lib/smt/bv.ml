type t = { width : int; value : int64 }

let mask width =
  if width = 64 then -1L else Int64.sub (Int64.shift_left 1L width) 1L

let make ~width v =
  if width < 1 || width > 64 then
    invalid_arg (Printf.sprintf "Bv.make: bad width %d" width);
  { width; value = Int64.logand v (mask width) }

let of_int ~width v = make ~width (Int64.of_int v)
let zero width = make ~width 0L
let one width = make ~width 1L
let ones width = make ~width (-1L)
let width t = t.width
let value t = t.value

let to_int t =
  if Int64.shift_right_logical t.value 62 <> 0L then
    invalid_arg "Bv.to_int: value does not fit"
  else Int64.to_int t.value

let to_signed_int64 t =
  if t.width = 64 then t.value
  else
    let shift = 64 - t.width in
    Int64.shift_right (Int64.shift_left t.value shift) shift

let equal a b = a.width = b.width && Int64.equal a.value b.value
let compare_unsigned a b = Int64.unsigned_compare a.value b.value
let compare_signed a b = Int64.compare (to_signed_int64 a) (to_signed_int64 b)

let check2 name a b =
  if a.width <> b.width then
    invalid_arg
      (Printf.sprintf "Bv.%s: width mismatch (%d vs %d)" name a.width b.width)

let lift2 name f a b =
  check2 name a b;
  make ~width:a.width (f a.value b.value)

let add = lift2 "add" Int64.add
let sub = lift2 "sub" Int64.sub
let mul = lift2 "mul" Int64.mul

let udiv a b =
  check2 "udiv" a b;
  if Int64.equal b.value 0L then ones a.width
  else make ~width:a.width (Int64.unsigned_div a.value b.value)

let urem a b =
  check2 "urem" a b;
  if Int64.equal b.value 0L then a
  else make ~width:a.width (Int64.unsigned_rem a.value b.value)

let neg a = make ~width:a.width (Int64.neg a.value)
let lognot a = make ~width:a.width (Int64.lognot a.value)
let logand = lift2 "logand" Int64.logand
let logor = lift2 "logor" Int64.logor
let logxor = lift2 "logxor" Int64.logxor

let shift_amount b =
  (* Amounts >= width are handled by the callers; 64 is a safe saturation
     value because OCaml's int64 shifts are undefined past 63. *)
  if Int64.unsigned_compare b.value 64L >= 0 then 64
  else Int64.to_int b.value

let shl a b =
  check2 "shl" a b;
  let n = shift_amount b in
  if n >= a.width then zero a.width
  else make ~width:a.width (Int64.shift_left a.value n)

let lshr a b =
  check2 "lshr" a b;
  let n = shift_amount b in
  if n >= a.width then zero a.width
  else make ~width:a.width (Int64.shift_right_logical a.value n)

let ashr a b =
  check2 "ashr" a b;
  let n = shift_amount b in
  let signed = to_signed_int64 a in
  if n >= a.width then
    if Int64.compare signed 0L < 0 then ones a.width else zero a.width
  else make ~width:a.width (Int64.shift_right signed n)

let ult a b = compare_unsigned a b < 0
let ule a b = compare_unsigned a b <= 0
let slt a b = compare_signed a b < 0
let sle a b = compare_signed a b <= 0

let extract ~hi ~lo t =
  if lo < 0 || hi < lo || hi >= t.width then
    invalid_arg
      (Printf.sprintf "Bv.extract: bad range [%d..%d] for width %d" hi lo
         t.width);
  make ~width:(hi - lo + 1) (Int64.shift_right_logical t.value lo)

let concat hi lo =
  let width = hi.width + lo.width in
  if width > 64 then invalid_arg "Bv.concat: combined width exceeds 64";
  make ~width
    (Int64.logor (Int64.shift_left hi.value lo.width) lo.value)

let zero_extend ~by t =
  if by < 0 then invalid_arg "Bv.zero_extend: negative";
  make ~width:(t.width + by) t.value

let sign_extend ~by t =
  if by < 0 then invalid_arg "Bv.sign_extend: negative";
  make ~width:(t.width + by) (to_signed_int64 t)

let bit t i =
  if i < 0 || i >= t.width then
    invalid_arg (Printf.sprintf "Bv.bit: index %d out of width %d" i t.width);
  Int64.logand (Int64.shift_right_logical t.value i) 1L = 1L

let to_string t = Printf.sprintf "%Lu:%d" t.value t.width
let pp fmt t = Format.pp_print_string fmt (to_string t)
