(* Static dependency slicing over the protocol DSL: a whole-program taint
   analysis from Receive sources (which branches can read which message
   fields), value-set machinery for injective byte chains, and a branch
   feasibility oracle that answers from the variable-connected cone of the
   path instead of the whole path. Everything here is a pure decision
   optimization: on clean runs every verdict coincides with the full query
   it replaces, so report digests are identical slice on or off. *)

open Achilles_smt
open Achilles_symvm
module Obs = Achilles_obs.Obs

(* --- escape hatch ---------------------------------------------------------- *)

let slice_flag =
  Atomic.make
    (match Sys.getenv_opt "ACHILLES_SLICE" with
    | Some s -> (
        match String.lowercase_ascii (String.trim s) with
        | "0" | "false" | "off" | "no" -> false
        | _ -> true)
    | None -> true)

let enabled () = Atomic.get slice_flag
let set_enabled b = Atomic.set slice_flag b

(* --- taint lattice ---------------------------------------------------------- *)

module SS = Set.Make (String)

(* Internal lattice: Clean < Fields s < Any, with Fields join = union. No
   strong updates anywhere — the analysis only ever joins, which is what
   makes "Clean" a proof. *)
type itaint = IClean | IFields of SS.t | IAny

let ijoin a b =
  match (a, b) with
  | IClean, x | x, IClean -> x
  | IAny, _ | _, IAny -> IAny
  | IFields x, IFields y -> IFields (SS.union x y)

let iequal a b =
  match (a, b) with
  | IClean, IClean | IAny, IAny -> true
  | IFields x, IFields y -> SS.equal x y
  | _ -> false

let imentions t f =
  match t with IAny -> true | IFields s -> SS.mem f s | IClean -> false

type taint = Clean | Fields of string list | Any

let tainted = function Clean -> false | Fields _ | Any -> true

let mentions t f =
  match t with Any -> true | Fields l -> List.mem f l | Clean -> false

type branch_info = { branch_id : string; branch_taint : taint }

type field_dep = {
  dep_field : string;
  dep_branches : int;
  dep_updates : int;
  dep_sends : int;
}

type summary = {
  program_name : string;
  branches : branch_info list;
  field_deps : field_dep list;
  any_tainted_branch : bool;
}

(* --- the taint analysis ------------------------------------------------------ *)

let analyze ~layout (program : Ast.program) =
  Obs.span Obs.Slice @@ fun () ->
  let global_set = SS.of_list (List.map fst program.Ast.globals) in
  (* One flow-insensitive store for every scalar name (globals, locals and
     parameters share the namespace — collisions only over-approximate). *)
  let vars : (string, itaint) Hashtbl.t = Hashtbl.create 32 in
  let bufs : (string, itaint array) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (name, len) -> Hashtbl.replace bufs name (Array.make len IClean))
    program.Ast.buffers;
  let returns : (string, itaint) Hashtbl.t = Hashtbl.create 8 in
  let changed = ref true in
  let get_var name =
    Option.value ~default:IClean (Hashtbl.find_opt vars name)
  in
  let set_var name t =
    let cur = get_var name in
    let j = ijoin cur t in
    if not (iequal cur j) then begin
      Hashtbl.replace vars name j;
      changed := true
    end
  in
  let get_buf name =
    Option.value ~default:[||] (Hashtbl.find_opt bufs name)
  in
  let buf_all name = Array.fold_left ijoin IClean (get_buf name) in
  let set_byte name i t =
    let a = get_buf name in
    if i >= 0 && i < Array.length a then begin
      let j = ijoin a.(i) t in
      if not (iequal a.(i) j) then begin
        a.(i) <- j;
        changed := true
      end
    end
  in
  let set_all name t =
    Array.iteri (fun i _ -> set_byte name i t) (get_buf name)
  in
  let const_off = function Ast.Num { value; _ } -> Some value | _ -> None in
  let rec texpr (e : Ast.expr) =
    match e with
    | Ast.Num _ | Ast.Len _ -> IClean
    | Ast.Var x -> get_var x
    | Ast.Load (buf, off) -> (
        (* a symbolic index muxes over every cell and embeds the index
           itself in the result term, so both taints ride along *)
        match const_off off with
        | Some k ->
            let a = get_buf buf in
            if k >= 0 && k < Array.length a then a.(k) else IClean
        | None -> ijoin (buf_all buf) (texpr off))
    | Ast.Unop (_, a) | Ast.Cast (_, a) -> texpr a
    | Ast.Binop (_, a, b) -> ijoin (texpr a) (texpr b)
  in
  (* Every Receive is a potential delivery of the analyzed message: byte [i]
     of the target buffer is tainted with the layout field covering offset
     [i], or Any for bytes no field declares. *)
  let receive_taint i =
    if i < Layout.total_size layout then
      match Layout.field_covering layout i with
      | Some f -> IFields (SS.singleton f.Layout.field_name)
      | None -> IAny
    else IAny
  in
  let rec sweep_stmt ~owner (stmt : Ast.stmt) =
    (match stmt with
    | Ast.Assign (x, e) -> set_var x (texpr e)
    | Ast.Store (buf, off, v) -> (
        match const_off off with
        | Some k -> set_byte buf k (texpr v)
        | None ->
            (* ite-encoded write: offset taint reaches every byte *)
            set_all buf (ijoin (texpr v) (texpr off)))
    | Ast.Receive buf ->
        Array.iteri
          (fun i _ -> set_byte buf i (receive_taint i))
          (get_buf buf)
    | Ast.Call { proc; args; result } -> (
        match Ast.find_proc program proc with
        | None -> ()
        | Some p ->
            (try
               List.iter2
                 (fun (param, _) arg -> set_var param (texpr arg))
                 p.Ast.params args
             with Invalid_argument _ -> ());
            (match result with
            | Some x ->
                set_var x
                  (Option.value ~default:IClean (Hashtbl.find_opt returns proc))
            | None -> ()))
    | Ast.Return (Some e) ->
        let cur =
          Option.value ~default:IClean (Hashtbl.find_opt returns owner)
        in
        let j = ijoin cur (texpr e) in
        if not (iequal cur j) then begin
          Hashtbl.replace returns owner j;
          changed := true
        end
    | Ast.Return None | Ast.If _ | Ast.Switch _ | Ast.While _ | Ast.Send _
    | Ast.Read_input _ | Ast.Make_symbolic _ | Ast.Make_buffer_symbolic _
    | Ast.Assume _ | Ast.Drop_path | Ast.Mark_accept _ | Ast.Mark_reject _
    | Ast.Halt | Ast.Abort _ ->
        ());
    List.iter
      (fun b -> List.iter (sweep_stmt ~owner) b)
      (Ast.stmt_blocks stmt)
  in
  while !changed do
    changed := false;
    List.iter
      (fun (owner, block) -> List.iter (sweep_stmt ~owner) block)
      (Ast.top_blocks program)
  done;
  (* Census over the fixpoint: branch/assume conditions with stable
     descriptors, plus the update and send taints the field table counts. *)
  let counters : (string * string, int ref) Hashtbl.t = Hashtbl.create 16 in
  let next owner kind =
    let key = (owner, kind) in
    let r =
      match Hashtbl.find_opt counters key with
      | Some r -> r
      | None ->
          let r = ref 0 in
          Hashtbl.add counters key r;
          r
    in
    let n = !r in
    incr r;
    Printf.sprintf "%s:%s#%d" owner kind n
  in
  let branches_rev = ref [] in
  let updates = ref [] in
  let sends = ref [] in
  let rec census_stmt owner (stmt : Ast.stmt) =
    (match stmt with
    | Ast.If (c, _, _) -> branches_rev := (next owner "if", texpr c) :: !branches_rev
    | Ast.Switch (e, _, _) ->
        branches_rev := (next owner "switch", texpr e) :: !branches_rev
    | Ast.While (c, _) ->
        branches_rev := (next owner "while", texpr c) :: !branches_rev
    | Ast.Assume e ->
        (* an Assume appends a path constraint just like a one-sided
           branch, so its reads count toward field->branch reachability *)
        branches_rev := (next owner "assume", texpr e) :: !branches_rev
    | Ast.Assign (x, e) when SS.mem x global_set -> updates := texpr e :: !updates
    | Ast.Store (_, off, v) ->
        let t =
          match const_off off with
          | Some _ -> texpr v
          | None -> ijoin (texpr v) (texpr off)
        in
        updates := t :: !updates
    | Ast.Send { dst; buf } ->
        sends := ijoin (texpr dst) (buf_all buf) :: !sends
    | _ -> ());
    List.iter
      (fun b -> List.iter (census_stmt owner) b)
      (Ast.stmt_blocks stmt)
  in
  List.iter
    (fun (owner, block) -> List.iter (census_stmt owner) block)
    (Ast.top_blocks program);
  let census = List.rev !branches_rev in
  let to_public = function
    | IClean -> Clean
    | IAny -> Any
    | IFields s -> Fields (SS.elements s)
  in
  let count_mentions taints f =
    List.length (List.filter (fun t -> imentions t f) taints)
  in
  let branch_taints = List.map snd census in
  let field_deps =
    List.map
      (fun (fl : Layout.field) ->
        let f = fl.Layout.field_name in
        {
          dep_field = f;
          dep_branches = count_mentions branch_taints f;
          dep_updates = count_mentions !updates f;
          dep_sends = count_mentions !sends f;
        })
      (Layout.fields layout)
  in
  {
    program_name = program.Ast.prog_name;
    branches =
      List.map
        (fun (id, t) -> { branch_id = id; branch_taint = to_public t })
        census;
    field_deps;
    any_tainted_branch = List.exists (fun t -> t = IAny) branch_taints;
  }

let field_reaches_branch s f =
  s.any_tainted_branch
  ||
  match List.find_opt (fun d -> d.dep_field = f) s.field_deps with
  | Some d -> d.dep_branches > 0
  | None -> true (* unknown field: no proof, stay conservative *)

let taint_string = function
  | Clean -> "clean"
  | Any -> "any"
  | Fields l -> "{" ^ String.concat "," l ^ "}"

let pp_summary fmt s =
  let tainted_branches =
    List.length (List.filter (fun b -> tainted b.branch_taint) s.branches)
  in
  Format.fprintf fmt "@[<v>slice %s: %d/%d branch sites message-tainted%s@,"
    s.program_name tainted_branches
    (List.length s.branches)
    (if s.any_tainted_branch then " (unattributed taint present)" else "");
  List.iter
    (fun b ->
      Format.fprintf fmt "  %-24s %s@," b.branch_id (taint_string b.branch_taint))
    s.branches;
  List.iter
    (fun d ->
      Format.fprintf fmt "  field %-16s branches %d, updates %d, sends %d@,"
        d.dep_field d.dep_branches d.dep_updates d.dep_sends)
    s.field_deps;
  Format.fprintf fmt "@]"

(* --- value-set machinery ------------------------------------------------------ *)

exception Not_chain

type part = Cpart of Bv.t | Vpart of Term.var

(* Flatten a concat tree into parts, high bits first. *)
let flatten t =
  let rec go (t : Term.t) acc =
    match t.Term.node with
    | Term.Concat (hi, lo) -> go hi (go lo acc)
    | Term.Const c -> Cpart c :: acc
    | Term.Var v -> Vpart v :: acc
    | _ -> raise Not_chain
  in
  try Some (go t []) with Not_chain -> None

let part_width = function
  | Cpart c -> Bv.width c
  | Vpart (v : Term.var) -> (
      match v.Term.sort with Term.Bitvec w -> w | Term.Bool -> 1)

(* An injective chain: concatenation of constants and pairwise-distinct
   variables. The term is then an injective function of its variables, and
   its image has exactly 2^(total variable width) values. *)
let injective_chain t =
  match flatten t with
  | None -> None
  | Some parts ->
      let ids =
        List.filter_map
          (function Vpart v -> Some v.Term.id | Cpart _ -> None)
          parts
      in
      if List.length (List.sort_uniq compare ids) = List.length ids then
        Some parts
      else None

let var_bits parts =
  List.fold_left
    (fun acc p -> match p with Vpart _ -> acc + part_width p | Cpart _ -> acc)
    0 parts

let injective_image_bits t =
  Option.map var_bits (injective_chain t)

(* Is the constant in the chain's image? Walk from the low end and compare
   the bits at every constant part. *)
let in_image parts c =
  let rec walk off = function
    | [] -> true
    | p :: rest -> (
        match p with
        | Vpart _ -> walk (off + part_width p) rest
        | Cpart bv ->
            let w = Bv.width bv in
            Bv.equal bv (Bv.extract ~hi:(off + w - 1) ~lo:off c)
            && walk (off + w) rest)
  in
  walk 0 (List.rev parts)

(* --- the cone oracle ---------------------------------------------------------- *)

(* Transitive var-sharing closure of the path's conjuncts, seeded from the
   condition's variables, in original path order. Since the whole path is
   satisfiable (the oracle is only consulted on exact paths) and the
   conjuncts outside the cone share no variable with [cond] or the cone,
   SAT(path /\ cond) = SAT(cone /\ cond). *)
let cone_of path cond =
  match path with
  | [] -> []
  | _ ->
      let module IS = Set.Make (Int) in
      let conj = Array.of_list path in
      let n = Array.length conj in
      let ids = Array.map Term.var_ids conj in
      let selected = Array.make n false in
      let seen = ref (IS.of_list (Term.var_ids cond)) in
      let changed = ref true in
      while !changed do
        changed := false;
        for k = 0 to n - 1 do
          if
            (not selected.(k))
            && List.exists (fun id -> IS.mem id !seen) ids.(k)
          then begin
            selected.(k) <- true;
            changed := true;
            seen := List.fold_left (fun s id -> IS.add id s) !seen ids.(k)
          end
        done
      done;
      List.filteri (fun k _ -> selected.(k)) path

(* Unpack a condition as an atom over one base term: an (in)equality or an
   unsigned comparison against a constant. *)
type batom =
  | Aeq of Bv.t (* base = c *)
  | Aneq of Bv.t (* base <> c *)
  | Alt of Bv.t (* base < c, unsigned *)
  | Ale of Bv.t (* base <= c *)
  | Agt of Bv.t (* base > c *)
  | Age of Bv.t (* base >= c *)

let atom (cond : Term.t) =
  let eq pos (a : Term.t) (b : Term.t) =
    match (a.Term.node, b.Term.node) with
    | Term.Const c, _ -> Some (b, if pos then Aeq c else Aneq c)
    | _, Term.Const c -> Some (a, if pos then Aeq c else Aneq c)
    | _ -> None
  in
  let ult pos (a : Term.t) (b : Term.t) =
    match (a.Term.node, b.Term.node) with
    | Term.Const c, _ -> Some (b, if pos then Agt c else Ale c)
    | _, Term.Const c -> Some (a, if pos then Alt c else Age c)
    | _ -> None
  in
  let ule pos (a : Term.t) (b : Term.t) =
    match (a.Term.node, b.Term.node) with
    | Term.Const c, _ -> Some (b, if pos then Age c else Alt c)
    | _, Term.Const c -> Some (a, if pos then Ale c else Agt c)
    | _ -> None
  in
  match cond.Term.node with
  | Term.Eq (a, b) -> eq true a b
  | Term.Ult (a, b) -> ult true a b
  | Term.Ule (a, b) -> ule true a b
  | Term.Not t -> (
      match t.Term.node with
      | Term.Eq (a, b) -> eq false a b
      | Term.Ult (a, b) -> ult false a b
      | Term.Ule (a, b) -> ule false a b
      | _ -> None)
  | _ -> None

(* Contiguous image [lo, lo + 2^vw - 1] of an injective chain whose variable
   parts occupy the low bits (constant parts, if any, all sit above them).
   Bounded to 61 bits so the interval arithmetic below stays exact in
   [Int64]. *)
let contiguous_image t =
  match injective_chain t with
  | None -> None
  | Some parts ->
      let rec vars_low seen_var = function
        | [] -> true
        | Cpart _ :: _ when seen_var -> false
        | Cpart _ :: rest -> vars_low seen_var rest
        | Vpart _ :: rest -> vars_low true rest
      in
      let total = List.fold_left (fun a p -> a + part_width p) 0 parts in
      if (not (vars_low false parts)) || total > 61 then None
      else
        let vw = var_bits parts in
        (* parts are high bits first: fold builds the value with every
           variable part contributing zero, which is exactly [lo] *)
        let lo =
          List.fold_left
            (fun acc p ->
              let v = match p with Cpart c -> Bv.value c | Vpart _ -> 0L in
              Int64.add (Int64.shift_left acc (part_width p)) v)
            0L parts
        in
        Some (lo, Int64.add lo (Int64.sub (Int64.shift_left 1L vw) 1L))

(* SAT of an atom conjunction over one base with a contiguous image: clamp
   the interval with the bounds, then count what the disequalities leave. *)
let decide_interval base atoms =
  match contiguous_image base with
  | None -> None
  | Some (lo, hi) ->
      let l = ref lo and u = ref hi in
      let eqs = ref [] and neqs = ref [] in
      List.iter
        (fun a ->
          match a with
          | Aeq c -> eqs := Bv.value c :: !eqs
          | Aneq c -> neqs := Bv.value c :: !neqs
          | Alt c -> u := Int64.min !u (Int64.sub (Bv.value c) 1L)
          | Ale c -> u := Int64.min !u (Bv.value c)
          | Agt c -> l := Int64.max !l (Int64.add (Bv.value c) 1L)
          | Age c -> l := Int64.max !l (Bv.value c))
        atoms;
      let in_range v = v >= !l && v <= !u in
      Some
        (match !eqs with
        | e :: rest ->
            List.for_all (Int64.equal e) rest
            && in_range e
            && not (List.exists (Int64.equal e) !neqs)
        | [] ->
            !l <= !u
            && Int64.to_int (Int64.add (Int64.sub !u !l) 1L)
               > List.length
                   (List.sort_uniq Int64.compare (List.filter in_range !neqs)))

(* Decide SAT(cone /\ cond) statically when every conjunct involved is an
   atom over one shared base term. Exact: [Some v] must be the verdict the
   solver would return.

   - some equality [base = e] in the cone: the path is satisfiable, so the
     base is pinned to [e] and the condition is decided by comparing
     constants (this also subsumes the syntactic-subsumption check with
     field-level precision);
   - only (dis)equalities, base an injective chain: [base = c] is SAT iff
     [c] is in the image and excluded by no disequality; [base <> c] is SAT
     iff the excluded image values do not cover the whole image;
   - unsigned comparisons present, base with a contiguous image: exact
     interval arithmetic over the clamped range. *)
let decide ~cone cond =
  match atom cond with
  | None -> None
  | Some (base, catom) -> (
      let rec collect acc = function
        | [] -> Some (List.rev acc)
        | conj :: rest -> (
            match atom conj with
            | Some (base', a) when Term.equal base base' ->
                collect (a :: acc) rest
            | _ -> None)
      in
      match collect [] cone with
      | None -> None
      | Some cone_atoms -> (
          let interval =
            List.exists
              (function Alt _ | Ale _ | Agt _ | Age _ -> true | _ -> false)
              (catom :: cone_atoms)
          in
          if interval then decide_interval base (catom :: cone_atoms)
          else
            let pos, c =
              match catom with
              | Aeq c -> (true, c)
              | Aneq c -> (false, c)
              | _ -> assert false
            in
            let eqs, neqs =
              List.partition_map
                (function
                  | Aeq d -> Either.Left d
                  | Aneq d -> Either.Right d
                  | _ -> assert false)
                cone_atoms
            in
            match eqs with
            | e :: rest ->
                if List.for_all (Bv.equal e) rest then
                  Some (if pos then Bv.equal c e else not (Bv.equal c e))
                else None (* contradictory cone: leave it to the solver *)
            | [] -> (
                match injective_chain base with
                | None -> None
                | Some parts ->
                    if pos then
                      Some
                        (in_image parts c
                        && not (List.exists (Bv.equal c) neqs))
                    else
                      let vw = var_bits parts in
                      if vw >= 62 then Some true
                      else
                        let excluded =
                          List.sort_uniq Int64.compare
                            (List.filter_map
                               (fun d ->
                                 if in_image parts d then Some (Bv.value d)
                                 else None)
                               (c :: neqs))
                        in
                        Some (List.length excluded < 1 lsl vw))))

let verdict_of_result = function
  | Solver.Sat _ -> Interp.Feasible_exact
  | Solver.Unsat -> Interp.Infeasible
  | Solver.Unknown -> Interp.Feasible_unknown

let make_oracle () : Interp.oracle =
  (* per-oracle memo on the alpha-canonical cone key; one oracle per run or
     per shard task, never shared across domains *)
  let memo : (string, Interp.feasibility) Hashtbl.t = Hashtbl.create 512 in
  fun ~path cond ->
    Obs.span Obs.Slice @@ fun () ->
    let cone = cone_of path cond in
    match decide ~cone cond with
    | Some sat ->
        Obs.count "slice.branch_skipped";
        if sat then Interp.Feasible_exact else Interp.Infeasible
    | None -> (
        let key = Term.alpha_key (cond :: cone) in
        match Hashtbl.find_opt memo key with
        | Some v ->
            Obs.count "slice.memo_hits";
            v
        | None ->
            Obs.count "slice.cone_queries";
            let v = verdict_of_result (Solver.check (cond :: cone)) in
            (* Unknown is retryable (budgets, fault injection): don't pin it *)
            if v <> Interp.Feasible_unknown then Hashtbl.replace memo key v;
            v)
