(** Static dependency slicing over the protocol DSL.

    The interpreter pays a full-path solver query for every symbolic branch,
    yet most server branches never depend on message bytes, and most of the
    ones that do only relate a handful of message bytes to constants. This
    module computes, once per program, what depends on what — and turns that
    into decisions the rest of the pipeline consumes:

    - {!analyze} runs a whole-program taint analysis from [Receive] sources
      through scalars, buffers and procedure calls, producing a branch
      census (which conditions are message-byte-tainted, and through which
      layout fields) and a per-field dependence summary (how many branches,
      state updates and sends each field can reach).
    - {!make_oracle} builds an {!Achilles_symvm.Interp.oracle}: branch
      feasibility answered from the variable-connected {e cone} of the path
      instead of the whole path, with equality chains on one base term
      decided statically and the rest answered by a memoized cone-restricted
      solver query.
    - {!injective_image_bits} is the value-set machinery [Different_from]
      uses to decide provably-different / provably-contained field pairs
      without a solver.

    {b Soundness bar.} Slicing is a pure decision optimization: on clean
    (unbudgeted, fault-free) runs every verdict it produces coincides with
    the verdict of the full query it replaces, so report digests are
    byte-identical slice on or off, at any domain count. The taint analysis
    only over-approximates (joins, no strong updates, symbolic offsets
    spill to whole buffers), so "field reaches no branch" is a proof, never
    a guess. *)

open Achilles_smt
open Achilles_symvm

val enabled : unit -> bool
(** Whether slicing is on. Defaults to [true]; the environment variable
    [ACHILLES_SLICE] (["0"], ["false"], ["off"], ["no"]) or {!set_enabled}
    turns it off — the [--no-slice] escape hatch reads this. *)

val set_enabled : bool -> unit

(** {1 Static taint analysis} *)

(** Message taint of one value: [Clean] — provably no message byte flows
    here; [Fields s] — only bytes of the named layout fields can; [Any] —
    message-tainted through bytes outside any declared field (or past the
    layout), so field attribution is unknown. *)
type taint = Clean | Fields of string list  (** sorted *) | Any

type branch_info = {
  branch_id : string;
      (** stable descriptor ["proc:kind#n"], [n] counting pre-order per
          statement kind per procedure — e.g. ["main:if#0"],
          ["check:switch#1"], ["main:while#0"] *)
  branch_taint : taint;  (** taint of the branch condition *)
}

type field_dep = {
  dep_field : string;
  dep_branches : int;  (** branch conditions this field can reach *)
  dep_updates : int;  (** global assignments / buffer stores it can reach *)
  dep_sends : int;  (** sends whose payload or destination it can reach *)
}

type summary = {
  program_name : string;
  branches : branch_info list;  (** pre-order, main first then procs *)
  field_deps : field_dep list;  (** layout order *)
  any_tainted_branch : bool;
      (** some branch condition has taint [Any]: field attribution is
          incomplete and per-field branch counts cannot be trusted as
          upper bounds *)
}

val analyze : layout:Layout.t -> Ast.program -> summary
(** Whole-program flow-insensitive monotone fixpoint: every [Receive]
    target byte is a source tainted with the layout field covering its
    offset ([Any] past the layout), assignments and stores propagate joins
    (symbolic offsets spill to the whole buffer, and the offset's own taint
    rides along — matching the interpreter's mux/ite encodings), procedure
    parameters join over all call sites and returns join back into every
    result variable. Runs under the [Obs] [Slice] phase. *)

val tainted : taint -> bool
(** [taint <> Clean]. *)

val mentions : taint -> string -> bool
(** May this taint include bytes of the named field? [Any] mentions every
    field. *)

val field_reaches_branch : summary -> string -> bool
(** Can any byte of the field flow into any branch condition? [false] is a
    static proof that no server path constraint will ever contain the
    field's message variables — the [Different_from] rows for such a field
    are never consulted by the search, so their pair checks can be skipped
    wholesale. Conservatively [true] for every field when
    [any_tainted_branch] is set. *)

val pp_summary : Format.formatter -> summary -> unit
(** Stable rendering (the golden-test format): the branch census with
    taints, then the per-field dependence table. *)

(** {1 Value-set machinery} *)

val injective_image_bits : Term.t -> int option
(** [Some k] when the term is a concatenation chain of constants and
    pairwise-distinct variables — an injective function of its variables
    whose image has exactly [2^k] values ([k] = total variable width).
    Plain variables and zero-extended variables qualify; [None] means the
    term's value set is not statically known. Used to decide "does this
    unconstrained field value escape a single concrete value" without a
    solver. *)

(** {1 The feasibility oracle} *)

val make_oracle : unit -> Interp.oracle
(** A fresh oracle (per run or per shard task — the memo table is not
    thread-safe and must not cross domains). Given a known-satisfiable
    [path] and a branch condition [cond], it:

    + restricts the path to the {e cone} — the transitive var-sharing
      closure of the path's conjuncts seeded from [cond]'s variables; since
      the rest of the path is satisfiable and shares no variable with
      [cond] or the cone, [SAT(path /\ cond) = SAT(cone /\ cond)];
    + decides atom chains over a single shared base term statically
      (counter [slice.branch_skipped]): equality/disequality chains over
      injective concatenation chains, and unsigned-comparison intervals
      over bases with a contiguous image (exact range-minus-holes
      counting). This is the field-level subsumption upgrade: only the
      constraints on the branch's own read set are consulted, and e.g. a
      switch case is killed by the preceding cases' disequalities, or a
      guard chain [x > a, x < b] decided, without any solver work;
    + otherwise answers with a scratch solver query over [cond :: cone]
      (counter [slice.cone_queries]), memoized on the alpha-canonical key
      of the cone (counter [slice.memo_hits]); [Unknown] degrades to
      [Feasible_unknown] and is not memoized.

    Verdicts coincide with the full-path query on clean runs — the digest
    invariance the search relies on. *)
