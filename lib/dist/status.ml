(* Atomically-updated run status for a distributed search.

   The coordinator aggregates worker telemetry snapshots (piggybacked on
   heartbeats) and mirrors the run's live state to [workdir/status.json]
   via the same temp-file + rename discipline as checkpoints, so `achilles
   status` can render a consistent picture of a live run — or the last
   known picture of a crashed one — without talking to any process. *)

module Obs = Achilles_obs.Obs

let version = 1
let status_file workdir = Filename.concat workdir "status.json"

type worker = {
  w_wid : int;
  w_pid : int; (* -1 when the worker never said hello *)
  w_epoch : int; (* respawns of this slot so far *)
  w_last_seen : float; (* epoch seconds of the last message from it *)
  w_shard : int; (* currently leased shard, -1 when idle *)
  w_phase : string; (* dominant phase since its previous snapshot *)
  w_queries : int; (* cumulative solver queries it reported *)
}

type t = {
  s_run_id : string;
  s_state : string; (* "running" | "done" *)
  s_updated : float; (* epoch seconds of this write *)
  s_started : float;
  s_shards_total : int;
  s_done : int;
  s_leased : int;
  s_pending : int;
  s_uncovered : int;
  s_reassignments : int;
  s_queries : int;
  s_cache_hits : int;
  s_cache_misses : int;
  s_workers : worker list;
  s_counters : (string * int) list; (* merged worker counters, sorted *)
}

let queries_per_sec t =
  let dt = t.s_updated -. t.s_started in
  if dt > 0. then float_of_int t.s_queries /. dt else 0.

let cache_hit_rate t =
  let total = t.s_cache_hits + t.s_cache_misses in
  if total > 0 then float_of_int t.s_cache_hits /. float_of_int total else 0.

let to_json t =
  let open Obs.Json in
  let num f = VNum f in
  let int i = VNum (float_of_int i) in
  VObj
    [
      ("version", int version);
      ("run_id", VStr t.s_run_id);
      ("state", VStr t.s_state);
      ("updated", num t.s_updated);
      ("started", num t.s_started);
      ( "shards",
        VObj
          [
            ("total", int t.s_shards_total);
            ("done", int t.s_done);
            ("leased", int t.s_leased);
            ("pending", int t.s_pending);
            ("uncovered", int t.s_uncovered);
          ] );
      ("reassignments", int t.s_reassignments);
      ( "solver",
        VObj
          [
            ("queries", int t.s_queries);
            ("cache_hits", int t.s_cache_hits);
            ("cache_misses", int t.s_cache_misses);
            ("queries_per_sec", num (queries_per_sec t));
            ("cache_hit_rate", num (cache_hit_rate t));
          ] );
      ( "workers",
        VArr
          (List.map
             (fun w ->
               VObj
                 [
                   ("wid", int w.w_wid);
                   ("pid", int w.w_pid);
                   ("epoch", int w.w_epoch);
                   ("last_seen", num w.w_last_seen);
                   ("shard", int w.w_shard);
                   ("phase", VStr w.w_phase);
                   ("queries", int w.w_queries);
                 ])
             t.s_workers) );
      ("counters", VObj (List.map (fun (k, v) -> (k, int v)) t.s_counters));
    ]

let of_json v =
  let open Obs.Json in
  let str k obj = Option.bind (mem k obj) to_str in
  let flt k obj = Option.bind (mem k obj) to_float in
  let int k obj = Option.map int_of_float (flt k obj) in
  let d0 = Option.value ~default:0 in
  let df = Option.value ~default:0. in
  match v with
  | VObj _ ->
      let shards = Option.value ~default:(VObj []) (mem "shards" v) in
      let solver = Option.value ~default:(VObj []) (mem "solver" v) in
      let workers =
        match mem "workers" v with
        | Some (VArr ws) ->
            List.filter_map
              (fun w ->
                match w with
                | VObj _ ->
                    Some
                      {
                        w_wid = d0 (int "wid" w);
                        w_pid = Option.value ~default:(-1) (int "pid" w);
                        w_epoch = d0 (int "epoch" w);
                        w_last_seen = df (flt "last_seen" w);
                        w_shard = Option.value ~default:(-1) (int "shard" w);
                        w_phase = Option.value ~default:"" (str "phase" w);
                        w_queries = d0 (int "queries" w);
                      }
                | _ -> None)
              ws
        | _ -> []
      in
      let counters =
        match mem "counters" v with
        | Some (VObj fields) ->
            List.filter_map
              (fun (k, cv) ->
                Option.map (fun f -> (k, int_of_float f)) (to_float cv))
              fields
        | _ -> []
      in
      Ok
        {
          s_run_id = Option.value ~default:"" (str "run_id" v);
          s_state = Option.value ~default:"unknown" (str "state" v);
          s_updated = df (flt "updated" v);
          s_started = df (flt "started" v);
          s_shards_total = d0 (int "total" shards);
          s_done = d0 (int "done" shards);
          s_leased = d0 (int "leased" shards);
          s_pending = d0 (int "pending" shards);
          s_uncovered = d0 (int "uncovered" shards);
          s_reassignments = d0 (int "reassignments" v);
          s_queries = d0 (int "queries" solver);
          s_cache_hits = d0 (int "cache_hits" solver);
          s_cache_misses = d0 (int "cache_misses" solver);
          s_workers = workers;
          s_counters = counters;
        }
  | _ -> Error "status.json: expected a JSON object"

let save ~workdir t =
  try
    Lease.atomic_write ~path:(status_file workdir)
      (Obs.Json.to_string (to_json t) ^ "\n");
    true
  with Sys_error _ | Unix.Unix_error _ -> false

let load ~workdir =
  match Lease.read_file (status_file workdir) with
  | None -> Error (Printf.sprintf "no status.json under %s" workdir)
  | Some content -> (
      match Obs.Json.parse (String.trim content) with
      | Error msg -> Error (Printf.sprintf "status.json: %s" msg)
      | Ok v -> of_json v)

let pp ?now ppf t =
  let now = match now with Some n -> n | None -> Unix.gettimeofday () in
  Format.fprintf ppf "run %s: %s@."
    (if t.s_run_id = "" then "?" else t.s_run_id)
    t.s_state;
  Format.fprintf ppf "  updated %.1fs ago, running %.1fs@." (now -. t.s_updated)
    (t.s_updated -. t.s_started);
  Format.fprintf ppf
    "  shards: %d/%d done, %d leased, %d pending, %d uncovered, %d \
     reassignments@."
    t.s_done t.s_shards_total t.s_leased t.s_pending t.s_uncovered
    t.s_reassignments;
  Format.fprintf ppf
    "  solver: %d queries (%.1f/s), cache %d hits / %d misses (%.1f%% hit \
     rate)@."
    t.s_queries (queries_per_sec t) t.s_cache_hits t.s_cache_misses
    (100. *. cache_hit_rate t);
  if t.s_workers = [] then Format.fprintf ppf "  workers: none reported yet@."
  else begin
    Format.fprintf ppf "  workers:@.";
    List.iter
      (fun w ->
        let age = now -. w.w_last_seen in
        Format.fprintf ppf
          "    w%03d pid %d epoch %d: %s, last seen %.1fs ago, %s, %d queries@."
          w.w_wid w.w_pid w.w_epoch
          (if w.w_shard >= 0 then Printf.sprintf "shard %d" w.w_shard
           else "idle")
          age
          (if w.w_phase = "" then "no phase data"
           else Printf.sprintf "phase %s" w.w_phase)
          w.w_queries)
      (List.sort (fun a b -> compare a.w_wid b.w_wid) t.s_workers)
  end
