(** The coordinator of the multi-process search.

    Owns the {!Lease.Table} and the deterministic merge; leases route
    shards to worker processes, expires leases whose heartbeats stop,
    reassigns within a bounded per-shard budget (degrading to uncovered,
    never silently dropping), respawns dead workers with exponential
    backoff + jitter, and drains gracefully on cancellation. The final
    report goes through {!Achilles_core.Search.Shards.merge} — the same
    merge the in-process parallel mode uses — so its digest is
    byte-identical to a single-process run regardless of worker count,
    kills, duplicate lease races, or mid-shard crashes. *)

type worker_handle = {
  wh_poll : unit -> [ `Running | `Exited of int ];
  wh_kill : unit -> unit; (* best-effort hard kill, idempotent *)
  wh_reap : unit -> unit; (* waitpid / Domain.join, once, after exit *)
}

type spawner = wid:int -> epoch:int -> worker_handle
(** The worker transport is injected: the CLI spawns real
    [achilles worker] processes, tests and benchmarks spawn domains in
    this process. [epoch] counts spawns of this slot. *)

type config = {
  c_workers : int;
  c_lease_ttl : float; (* heartbeats must arrive within this *)
  c_reassign_budget : int; (* max assignments per shard *)
  c_max_respawns : int; (* extra spawns per slot after the first *)
  c_backoff : int -> float; (* respawn delay before spawn [epoch] *)
  c_drain_grace : float; (* wait for drained workers before killing *)
  c_tick : float; (* event-loop sleep *)
  c_cancel : unit -> bool; (* SIGINT/SIGTERM drain *)
  c_status_interval : float;
      (* cadence of atomic status.json writes aggregating worker telemetry
         snapshots; <= 0 disables status entirely *)
}

val default_config : config
(** 2 workers, 10 s TTL, budget 5, 10 respawns, exponential backoff from
    50 ms with +-25% jitter capped at 5 s, 5 s drain grace, 10 ms tick,
    1 s status interval. *)

val run :
  ?config:config ->
  ?run_id:string ->
  workdir:string ->
  job:Worker.job ->
  spawn:spawner ->
  ?manifest:string ->
  unit ->
  Achilles_core.Search.report
(** Run the protocol to completion (every shard Done or Uncovered), to
    cancellation, or until every worker slot is permanently dead. Resume
    is implicit: valid token-suffixed checkpoints already in
    [workdir/shards/] are merged without re-exploration, and tokens seen
    on disk raise the fencing floor so a previous incarnation's orphans
    can never win a race. [manifest], when given, is written atomically
    to [workdir/manifest] before any worker is spawned (process workers
    read it to rebuild the job). [run_id] (default: the process identity's
    run id) is stamped into status.json; telemetry never affects the
    report. *)

val process_spawner :
  prog:string -> argv:string array -> unit -> spawner
(** Spawn [prog argv ... --id <wid> --epoch <epoch>] per worker; poll via
    [waitpid WNOHANG]; kill via SIGKILL. *)

val domain_spawner :
  workdir:string -> job:Worker.job -> params:Worker.params -> unit -> spawner
(** In-process workers on domains — the full protocol (mailboxes, leases,
    token-suffixed checkpoints) minus process isolation. The fault hook
    raises {!Worker.Killed} so "death" unwinds the worker at poll
    granularity without taking the host down; [wh_kill] flips the
    worker's cancel. *)
