(* The coordinator of the multi-process search.

   It owns the lease table (Lease.Table) and the merge; workers own
   nothing but the shard they are currently leased. The event loop drains
   the inbox, expires leases, reaps and respawns worker processes with
   exponential backoff + jitter, and stops when every shard is Done or
   Uncovered (or the run is cancelled / every worker slot is permanently
   dead).

   Checkpoints are loaded and validated *before* the table accepts a
   completion, so `Done` always implies a merged event log in hand; a
   corrupt or missing checkpoint behind a Completed message is treated as
   a shard failure and reassigned within budget.

   The worker transport is injected (`spawner`), so tests and benchmarks
   can run workers as domains in this process while the CLI spawns real
   `achilles worker` processes — the protocol is identical either way. *)

module Search = Achilles_core.Search
module Obs = Achilles_obs.Obs

type worker_handle = {
  wh_poll : unit -> [ `Running | `Exited of int ];
  wh_kill : unit -> unit; (* best-effort hard kill, idempotent *)
  wh_reap : unit -> unit; (* waitpid / Domain.join, call once after exit *)
}

type spawner = wid:int -> epoch:int -> worker_handle

type config = {
  c_workers : int;
  c_lease_ttl : float;
  c_reassign_budget : int; (* max assignments per shard *)
  c_max_respawns : int; (* extra spawns per worker slot after the first *)
  c_backoff : int -> float; (* respawn delay before spawn [epoch] *)
  c_drain_grace : float; (* seconds to wait for drained workers to exit *)
  c_tick : float; (* event-loop sleep *)
  c_cancel : unit -> bool;
  c_status_interval : float; (* status.json write cadence; <= 0 disables *)
}

let default_backoff =
  (* exponential from 50 ms with +-25% jitter, capped at 5 s; the jitter
     PRNG is deliberately self-contained — respawn timing is the one
     place the run is allowed to be non-deterministic *)
  let rng = Random.State.make [| 0xd15f; 0xbac0 |] in
  fun epoch ->
    let base = min 5.0 (0.05 *. (2.0 ** float_of_int (min epoch 10))) in
    base *. (0.75 +. (Random.State.float rng 0.5))

let default_config =
  {
    c_workers = 2;
    c_lease_ttl = 10.0;
    c_reassign_budget = 5;
    c_max_respawns = 10;
    c_backoff = default_backoff;
    c_drain_grace = 5.0;
    c_tick = 0.01;
    c_cancel = (fun () -> false);
    c_status_interval = 1.0;
  }

type slot = {
  wid : int;
  mutable handle : worker_handle option;
  mutable epoch : int; (* spawns so far *)
  mutable respawn_at : float option;
  mutable gave_up : bool; (* drained, or out of respawns *)
}

(* Per-worker telemetry tracking, fed by Hello/Heartbeat/Snapshot traffic
   and mirrored into status.json. Purely observational. *)
type wtrack = {
  mutable t_pid : int; (* -1 until Hello *)
  mutable t_last_seen : float;
  mutable t_shard : int; (* -1 when idle *)
  mutable t_phase : string;
  mutable t_snap : Obs.snapshot option; (* latest cumulative snapshot *)
}

(* Where did this worker spend its time since the previous snapshot? The
   snapshots are cumulative, so the dominant phase is the largest positive
   seconds delta; a brand-new worker falls back to its largest total. *)
let dominant_phase ~prev ~cur =
  let prev_sec p =
    match prev with
    | Some s -> (
        match List.assoc_opt p s.Obs.phases with
        | Some m -> m.Obs.seconds
        | None -> 0.)
    | None -> 0.
  in
  let pick f =
    List.fold_left
      (fun (bn, bd) (p, m) ->
        let d = f p m in
        if d > bd then (Obs.phase_name p, d) else (bn, bd))
      ("", 0.) cur.Obs.phases
  in
  match pick (fun p m -> m.Obs.seconds -. prev_sec p) with
  | "", _ -> fst (pick (fun _ m -> m.Obs.seconds))
  | name, _ -> name

(* --- resume: recover fencing floor and completed shards from disk ------- *)

let scan_checkpoints workdir =
  let dir = Lease.shards_dir workdir in
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter_map (fun name ->
             try Scanf.sscanf name "shard-%d.t%d.ckpt" (fun s t -> Some (s, t))
             with Scanf.Scan_failure _ | Failure _ | End_of_file -> None)

let resume_from_disk table outs ~workdir ~fingerprint =
  let by_shard = Hashtbl.create 16 in
  List.iter
    (fun (shard, token) ->
      if shard >= 0 && shard < Lease.Table.n_shards table then begin
        Lease.Table.observe_token table ~shard ~token;
        Hashtbl.replace by_shard shard
          (token :: Option.value ~default:[] (Hashtbl.find_opt by_shard shard))
      end)
    (scan_checkpoints workdir);
  (* a lease file from a previous incarnation also raises the floor *)
  for shard = 0 to Lease.Table.n_shards table - 1 do
    (match Lease.read_lease ~workdir ~shard with
    | Some (token, _, _) -> Lease.Table.observe_token table ~shard ~token
    | None -> ());
    Lease.remove_lease ~workdir ~shard
  done;
  Hashtbl.iter
    (fun shard tokens ->
      let tokens = List.sort (fun a b -> compare b a) tokens in
      (* newest first; fall back on older tokens if the newest is torn *)
      List.iter
        (fun token ->
          if outs.(shard) = None then
            match
              Search.Shards.load
                ~file:(Lease.checkpoint_file ~workdir ~shard ~token)
                ~fingerprint ~idx:shard
            with
            | Some out ->
                outs.(shard) <- Some out;
                Lease.Table.mark_done_resumed table ~shard ~token;
                Lease.emit_lease_event ~name:"resumed"
                  ~args:[ ("shard", Obs.I shard); ("token", Obs.I token) ]
            | None -> ())
        tokens)
    by_shard

(* --- the event loop ------------------------------------------------------ *)

let run ?(config = default_config) ?run_id ~workdir ~job ~spawn ?manifest () =
  let job : Worker.job = job in
  let run_id =
    match run_id with Some id -> id | None -> fst (Obs.identity ())
  in
  let started = Unix.gettimeofday () in
  Lease.ensure_dir workdir;
  Lease.ensure_dir (Lease.inbox_dir workdir);
  Lease.ensure_dir (Lease.leases_dir workdir);
  (* drop any traffic left over from a previous incarnation — a stale
     Drain in an outbox would make every fresh worker quit on arrival *)
  Lease.purge_mailboxes workdir;
  (* prepare_dir also sweeps stale *.tmp.* left by killed writers *)
  Search.Shards.prepare_dir (Lease.shards_dir workdir);
  (match manifest with
  | Some content -> Lease.atomic_write ~path:(Lease.manifest_file workdir) content
  | None -> ());
  let total = 1 lsl job.Worker.j_bits in
  let table = Lease.Table.create ~shards:total ~budget:config.c_reassign_budget in
  let outs = Array.make total None in
  resume_from_disk table outs ~workdir ~fingerprint:job.Worker.j_fingerprint;
  let inbox = Lease.Mailbox.attach (Lease.inbox_dir workdir) in
  let outboxes = Hashtbl.create 8 in
  let outbox wid =
    match Hashtbl.find_opt outboxes wid with
    | Some mb -> mb
    | None ->
        let mb = Lease.Mailbox.attach (Lease.outbox_dir workdir wid) in
        Hashtbl.add outboxes wid mb;
        mb
  in
  let reply wid msg = Lease.Mailbox.send (outbox wid) (Lease.encode_to_worker msg) in
  let abandoned = ref 0 in
  let draining = ref false in
  let slots =
    Array.init config.c_workers (fun wid ->
        { wid; handle = None; epoch = 0; respawn_at = Some 0.0; gave_up = false })
  in
  let wtracks : (int, wtrack) Hashtbl.t = Hashtbl.create 8 in
  let track wid =
    match Hashtbl.find_opt wtracks wid with
    | Some t -> t
    | None ->
        let t =
          { t_pid = -1; t_last_seen = 0.; t_shard = -1; t_phase = ""; t_snap = None }
        in
        Hashtbl.add wtracks wid t;
        t
  in
  let touch ?pid ?shard wid ~now =
    let t = track wid in
    t.t_last_seen <- now;
    (match pid with Some p -> t.t_pid <- p | None -> ());
    match shard with Some s -> t.t_shard <- s | None -> ()
  in
  let last_status = ref 0. in
  let write_status ~state ~now =
    if config.c_status_interval > 0. then begin
      last_status := now;
      let merged =
        Hashtbl.fold
          (fun _ t acc ->
            match t.t_snap with
            | Some s -> Obs.Snapshot.merge acc s
            | None -> acc)
          wtracks
          (Obs.Snapshot.empty ())
      in
      let counter s name =
        Option.value ~default:0 (List.assoc_opt name s.Obs.counters)
      in
      let workers =
        Hashtbl.fold
          (fun wid t acc ->
            {
              Status.w_wid = wid;
              w_pid = t.t_pid;
              w_epoch =
                (if wid >= 0 && wid < config.c_workers then
                   max 0 (slots.(wid).epoch - 1)
                 else 0);
              w_last_seen = t.t_last_seen;
              w_shard = t.t_shard;
              w_phase = t.t_phase;
              w_queries =
                (match t.t_snap with
                | Some s -> counter s "solver.queries"
                | None -> 0);
            }
            :: acc)
          wtracks []
      in
      ignore
        (Status.save ~workdir
           {
             Status.s_run_id = run_id;
             s_state = state;
             s_updated = now;
             s_started = started;
             s_shards_total = total;
             s_done = List.length (Lease.Table.done_tokens table);
             s_leased = Lease.Table.leased_count table;
             s_pending = Lease.Table.pending_count table;
             s_uncovered = List.length (Lease.Table.uncovered table);
             s_reassignments = Lease.Table.reassignments table;
             s_queries = counter merged "solver.queries";
             s_cache_hits = counter merged "solver.cache_hits";
             s_cache_misses = counter merged "solver.cache_misses";
             s_workers = workers;
             s_counters = merged.Obs.counters;
           })
    end
  in
  let spawn_slot slot ~now:_ =
    slot.respawn_at <- None;
    match spawn ~wid:slot.wid ~epoch:slot.epoch with
    | handle ->
        Lease.emit_worker_event ~name:"spawn"
          ~args:[ ("wid", Obs.I slot.wid); ("epoch", Obs.I slot.epoch) ];
        slot.epoch <- slot.epoch + 1;
        slot.handle <- Some handle
    | exception _ ->
        (* spawner failure counts as an instant exit: backoff and retry *)
        slot.epoch <- slot.epoch + 1;
        if slot.epoch > config.c_max_respawns then slot.gave_up <- true
        else
          slot.respawn_at <-
            Some (Unix.gettimeofday () +. config.c_backoff slot.epoch)
  in
  let release_leases_of ~worker =
    List.iter
      (fun (shard, token) ->
        Lease.remove_lease ~workdir ~shard;
        Lease.emit_lease_event ~name:"released"
          ~args:
            [
              ("shard", Obs.I shard);
              ("token", Obs.I token);
              ("wid", Obs.I worker);
            ])
      (Lease.Table.release_worker table ~worker)
  in
  let start_drain () =
    if not !draining then begin
      draining := true;
      Lease.emit_worker_event ~name:"drain" ~args:[];
      Array.iter (fun slot -> reply slot.wid Lease.Drain) slots
    end
  in
  let handle_message msg =
    let now = Unix.gettimeofday () in
    match msg with
    | Lease.Hello { wid; pid } ->
        touch wid ~pid ~now;
        Lease.emit_worker_event ~name:"hello"
          ~args:[ ("wid", Obs.I wid); ("pid", Obs.I pid) ]
    | Lease.Snapshot { wid; shard; snap } ->
        let t = track wid in
        t.t_last_seen <- now;
        t.t_shard <- shard;
        t.t_phase <- dominant_phase ~prev:t.t_snap ~cur:snap;
        t.t_snap <- Some snap;
        Lease.emit_worker_event ~name:"snapshot"
          ~args:[ ("wid", Obs.I wid); ("shard", Obs.I shard) ]
    | Lease.Request { wid } ->
        touch wid ~shard:(-1) ~now;
        if !draining || wid < 0 || wid >= config.c_workers then
          (* unknown wids are strays from another incarnation: drain them *)
          reply wid Lease.Drain
        else if Lease.Table.settled table then reply wid Lease.Drain
        else begin
          match
            Lease.Table.grant table ~now ~ttl:config.c_lease_ttl ~worker:wid
          with
          | Some (shard, token) ->
              Lease.write_lease ~workdir ~shard ~token ~worker:wid
                ~deadline:(now +. config.c_lease_ttl);
              Lease.emit_lease_event ~name:"grant"
                ~args:
                  [
                    ("shard", Obs.I shard);
                    ("token", Obs.I token);
                    ("wid", Obs.I wid);
                  ];
              reply wid (Lease.Grant { shard; token })
          | None ->
              if Lease.Table.settled table then reply wid Lease.Drain
              else reply wid Lease.Wait
        end
    | Lease.Heartbeat { wid; shard; token } -> (
        touch wid ~shard ~now;
        match
          Lease.Table.renew table ~now ~ttl:config.c_lease_ttl ~worker:wid
            ~shard ~token
        with
        | `Renewed ->
            Lease.write_lease ~workdir ~shard ~token ~worker:wid
              ~deadline:(now +. config.c_lease_ttl)
        | `Stale ->
            Lease.emit_lease_event ~name:"stale_heartbeat"
              ~args:
                [
                  ("shard", Obs.I shard);
                  ("token", Obs.I token);
                  ("wid", Obs.I wid);
                ])
    | Lease.Completed { wid; shard; token } -> (
        touch wid ~shard:(-1) ~now;
        (* validate the checkpoint before the table accepts the
           completion: Done must imply a merged log in hand *)
        let loaded =
          if shard >= 0 && shard < total then
            Search.Shards.load
              ~file:(Lease.checkpoint_file ~workdir ~shard ~token)
              ~fingerprint:job.Worker.j_fingerprint ~idx:shard
          else None
        in
        match loaded with
        | Some out -> (
            match Lease.Table.complete table ~shard ~token with
            | `Accepted ->
                outs.(shard) <- Some out;
                Lease.remove_lease ~workdir ~shard;
                Lease.emit_lease_event ~name:"complete"
                  ~args:
                    [
                      ("shard", Obs.I shard);
                      ("token", Obs.I token);
                      ("wid", Obs.I wid);
                    ]
            | `Stale ->
                (* fencing: a late finish of a reassigned lease — the
                   token-suffixed checkpoint is simply never merged *)
                Lease.emit_lease_event ~name:"stale_done"
                  ~args:
                    [
                      ("shard", Obs.I shard);
                      ("token", Obs.I token);
                      ("wid", Obs.I wid);
                    ])
        | None -> (
            Lease.emit_lease_event ~name:"corrupt_done"
              ~args:[ ("shard", Obs.I shard); ("token", Obs.I token) ];
            match Lease.Table.fail table ~shard ~token with
            | `Reassignable | `Exhausted -> Lease.remove_lease ~workdir ~shard
            | `Stale -> ()))
    | Lease.Failed { wid; shard; token; abandoned = ab } -> (
        touch wid ~shard:(-1) ~now;
        abandoned := !abandoned + ab;
        match Lease.Table.fail table ~shard ~token with
        | `Reassignable ->
            Lease.remove_lease ~workdir ~shard;
            Lease.emit_lease_event ~name:"failed"
              ~args:
                [
                  ("shard", Obs.I shard);
                  ("token", Obs.I token);
                  ("wid", Obs.I wid);
                ]
        | `Exhausted ->
            Lease.remove_lease ~workdir ~shard;
            Lease.emit_lease_event ~name:"uncovered"
              ~args:[ ("shard", Obs.I shard) ]
        | `Stale -> ())
    | Lease.Bye { wid } ->
        touch wid ~now;
        if wid >= 0 && wid < config.c_workers then begin
          slots.(wid).gave_up <- true;
          Lease.emit_worker_event ~name:"worker_bye" ~args:[ ("wid", Obs.I wid) ]
        end
  in
  let poll_slots ~now =
    Array.iter
      (fun slot ->
        match slot.handle with
        | None ->
            if
              (not slot.gave_up) && (not !draining)
              && (match slot.respawn_at with
                 | Some at -> at <= now
                 | None -> false)
            then spawn_slot slot ~now
        | Some h -> (
            match h.wh_poll () with
            | `Running -> ()
            | `Exited code ->
                h.wh_reap ();
                slot.handle <- None;
                Lease.emit_worker_event ~name:"exit"
                  ~args:[ ("wid", Obs.I slot.wid); ("code", Obs.I code) ];
                release_leases_of ~worker:slot.wid;
                if (not slot.gave_up) && not !draining then begin
                  if slot.epoch > config.c_max_respawns then begin
                    slot.gave_up <- true;
                    Lease.emit_worker_event ~name:"gave_up"
                      ~args:[ ("wid", Obs.I slot.wid) ]
                  end
                  else begin
                    let delay = config.c_backoff slot.epoch in
                    Lease.emit_worker_event ~name:"respawn_scheduled"
                      ~args:
                        [ ("wid", Obs.I slot.wid); ("delay", Obs.F delay) ];
                    slot.respawn_at <- Some (now +. delay)
                  end
                end))
      slots
  in
  let live_handles () =
    Array.exists (fun slot -> slot.handle <> None) slots
  in
  let all_slots_dead () =
    Array.for_all (fun slot -> slot.handle = None && slot.gave_up) slots
  in
  Obs.span Obs.Dist (fun () ->
      (* main event loop *)
      let finished = ref false in
      while not !finished do
        let now = Unix.gettimeofday () in
        List.iter handle_message
          (List.filter_map Lease.parse_to_coordinator
             (Lease.Mailbox.recv inbox));
        List.iter
          (fun (shard, token, wid) ->
            Lease.remove_lease ~workdir ~shard;
            Lease.emit_lease_event ~name:"expired"
              ~args:
                [
                  ("shard", Obs.I shard);
                  ("token", Obs.I token);
                  ("wid", Obs.I wid);
                ];
            if Lease.Table.state table shard = Lease.Table.Uncovered then
              Lease.emit_lease_event ~name:"uncovered"
                ~args:[ ("shard", Obs.I shard) ])
          (Lease.Table.expire table ~now);
        poll_slots ~now;
        if
          config.c_status_interval > 0.
          && now -. !last_status >= config.c_status_interval
        then write_status ~state:"running" ~now;
        if config.c_cancel () then start_drain ();
        if Lease.Table.settled table then begin
          start_drain ();
          finished := true
        end
        else if !draining then begin
          (* cancelled: in-flight shards finish gracefully, the rest stay
             missing (interrupted coverage), exactly like in-process *)
          if not (live_handles ()) then finished := true
          else Unix.sleepf config.c_tick
        end
        else if all_slots_dead () && Lease.Table.leased_count table = 0 then begin
          (* nothing alive and nothing respawnable: whatever is still
             pending is permanently uncoverable — report it, don't spin *)
          List.iter
            (fun shard ->
              Lease.emit_lease_event ~name:"uncovered"
                ~args:[ ("shard", Obs.I shard) ])
            (Lease.Table.give_up_pending table);
          finished := true
        end
        else Unix.sleepf config.c_tick
      done;
      (* drain: give workers a grace period to exit, then hard-kill *)
      start_drain ();
      let deadline = Unix.gettimeofday () +. config.c_drain_grace in
      while live_handles () && Unix.gettimeofday () < deadline do
        (* keep consuming messages so workers blocked on a reply drain *)
        List.iter handle_message
          (List.filter_map Lease.parse_to_coordinator
             (Lease.Mailbox.recv inbox));
        poll_slots ~now:(Unix.gettimeofday ());
        Array.iter
          (fun slot -> if slot.handle <> None then reply slot.wid Lease.Drain)
          slots;
        Unix.sleepf config.c_tick
      done;
      Array.iter
        (fun slot ->
          match slot.handle with
          | Some h ->
              h.wh_kill ();
              Lease.emit_worker_event ~name:"killed"
                ~args:[ ("wid", Obs.I slot.wid) ];
              let rec reap tries =
                match h.wh_poll () with
                | `Exited _ -> h.wh_reap ()
                | `Running ->
                    if tries > 0 then begin
                      Unix.sleepf 0.02;
                      reap (tries - 1)
                    end
              in
              reap 100;
              slot.handle <- None
          | None -> ())
        slots);
  (* final status: the run is settled (or cancelled); ages freeze here *)
  write_status ~state:"done" ~now:(Unix.gettimeofday ());
  let outs_resumed =
    List.filter_map
      (fun (shard, _token, resumed) ->
        match outs.(shard) with
        | Some out -> Some (out, resumed)
        | None -> None (* unreachable: Done implies a validated load *))
      (Lease.Table.done_tokens table)
  in
  let failed_shards = Lease.Table.uncovered table in
  let interrupted = config.c_cancel () || not (Lease.Table.settled table) in
  Search.Shards.merge ~total ~base:job.Worker.j_base ~started ~outs_resumed
    ~failed_shards ~retry_attempts:(Lease.Table.reassignments table)
    ~interrupted ~abandoned:!abandoned

(* --- spawners ------------------------------------------------------------ *)

(* Real worker processes: [argv] must be the full command line for one
   worker sans [--id]/[--epoch] (the CLI builds it around
   `achilles worker --work-dir ...`). *)
let process_spawner ~prog ~argv () ~wid ~epoch =
  let args =
    Array.append argv
      [| "--id"; string_of_int wid; "--epoch"; string_of_int epoch |]
  in
  let pid = Unix.create_process prog args Unix.stdin Unix.stdout Unix.stderr in
  let status = ref None in
  let poll () =
    match !status with
    | Some code -> `Exited code
    | None -> (
        match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ -> `Running
        | _, Unix.WEXITED code ->
            status := Some code;
            `Exited code
        | _, (Unix.WSIGNALED n | Unix.WSTOPPED n) ->
            status := Some (128 + n);
            `Exited (128 + n)
        | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
            status := Some 0;
            `Exited 0)
  in
  {
    wh_poll = poll;
    wh_kill =
      (fun () ->
        if !status = None then
          try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
    wh_reap = (fun () -> ignore (poll ()));
  }

(* In-process workers on domains: the protocol (mailboxes, leases,
   checkpoints) is exercised end to end; only process isolation is
   simulated. [die] raises {!Worker.Killed}, which unwinds the worker
   loop — death at poll granularity. *)
let domain_spawner ~workdir ~job ~params () ~wid ~epoch =
  let exited = Atomic.make None in
  let killed = Atomic.make false in
  let domain =
    Domain.spawn (fun () ->
        let die () = raise Worker.Killed in
        let result =
          match
            Worker.run ~workdir ~wid ~epoch ~params
              ~die
              ~job:
                {
                  job with
                  Worker.j_config =
                    {
                      job.Worker.j_config with
                      Search.cancel =
                        (fun () ->
                          Atomic.get killed
                          || job.Worker.j_config.Search.cancel ());
                    };
                }
              ()
          with
          | () -> 0
          | exception Worker.Killed -> 137
          | exception _ -> 70
        in
        Atomic.set exited (Some result))
  in
  {
    wh_poll =
      (fun () ->
        match Atomic.get exited with
        | Some code -> `Exited code
        | None -> `Running);
    wh_kill = (fun () -> Atomic.set killed true);
    wh_reap = (fun () -> Domain.join domain);
  }
