(** The worker side of the multi-process search.

    A worker attaches to a coordinator's work directory, announces itself,
    and loops: request a shard, run it through the existing
    {!Achilles_core.Search.Shards} pipeline, persist the result as a
    token-suffixed atomic checkpoint, report completion, repeat — until the
    coordinator drains it, the run is cancelled (SIGINT/SIGTERM in the
    worker process), or the coordinator goes silent past the orphan
    timeout.

    Heartbeats piggyback on the search's cancellation poll (called at
    every branch constraint), so a worker wedged inside one solver query
    stops heartbeating and loses its lease — by design. *)

type job = {
  j_config : Achilles_core.Search.config;
  j_different_from : Achilles_core.Different_from.t option;
  j_client : Achilles_core.Predicate.client_predicate;
  j_server : Achilles_symvm.Ast.program;
  j_bits : int; (* 2^bits route shards *)
  j_base : int; (* fresh-variable counter base, replayed per shard *)
  j_fingerprint : string; (* run identity; checkpoints are keyed on it *)
}

val job_of :
  config:Achilles_core.Search.config ->
  ?different_from:Achilles_core.Different_from.t ->
  client:Achilles_core.Predicate.client_predicate ->
  server:Achilles_symvm.Ast.program ->
  unit ->
  job
(** Derive [bits], [base] (the {e current} fresh counter — call at the
    same point a single-process run would start searching) and the
    fingerprint from the inputs. Every process of a run must construct
    the same job from the same inputs; the fingerprint check catches
    drift. *)

type params = {
  heartbeat_interval : float;
  snapshot_interval : float;
      (** telemetry snapshot cadence (piggybacked on heartbeats and idle
          polls); [0.] disables snapshots *)
  poll_sleep : float;
  orphan_timeout : float;
  fault_rate : float;
  fault_seed : int;
}

val params_of_env : unit -> params
(** Defaults, overridable via [ACHILLES_HEARTBEAT_INTERVAL] (0.5 s),
    [ACHILLES_SNAPSHOT_INTERVAL] (1 s; 0 disables telemetry snapshots),
    [ACHILLES_WORKER_ORPHAN_TIMEOUT] (30 s), [ACHILLES_WORKER_FAULT_RATE]
    (0: per-heartbeat-tick death probability), and
    [ACHILLES_WORKER_FAULT_SEED]. *)

exception Killed
(** Raised by the in-process [die] used in tests/benchmarks to simulate
    SIGKILL at poll granularity without taking the host process down. *)

val run :
  workdir:string ->
  wid:int ->
  ?epoch:int ->
  ?params:params ->
  ?die:(unit -> unit) ->
  job:job ->
  unit ->
  unit
(** Run the worker loop until drain / cancellation / orphan exit.
    [epoch] is the respawn count, mixed into the fault PRNG so a
    respawned worker does not die at the same poll forever. [die]
    defaults to closing any open trace stream and then [Unix._exit 137]
    (a real process death — [_exit] skips [at_exit], so the trace must be
    closed here); in-process workers pass [fun () -> raise Killed]. *)
