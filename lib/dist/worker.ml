(* The worker side of the multi-process search: lease a shard, run the
   existing [Search] shard pipeline on it, publish the result through the
   atomic checkpoint format, repeat until drained.

   Heartbeats piggyback on the search's cancellation poll, which the
   interpreter calls at every branch constraint — no extra thread. The
   flip side is intended: a worker wedged inside a single solver query
   stops heartbeating, its lease expires, and the coordinator reassigns
   the shard to someone who can make progress.

   Fault injection ([ACHILLES_WORKER_FAULT_RATE]) kills the worker at
   heartbeat granularity with a per-(seed, wid, epoch) PRNG — the epoch
   (respawn count) is mixed in so a respawned worker does not
   deterministically die at the same poll forever. *)

module Search = Achilles_core.Search
module Obs = Achilles_obs.Obs

type job = {
  j_config : Search.config;
  j_different_from : Achilles_core.Different_from.t option;
  j_client : Achilles_core.Predicate.client_predicate;
  j_server : Achilles_symvm.Ast.program;
  j_bits : int;
  j_base : int;
  j_fingerprint : string;
}

let job_of ~config ?different_from ~client ~server () =
  let bits = Search.Shards.split_bits config in
  {
    j_config = config;
    j_different_from = different_from;
    j_client = client;
    j_server = server;
    j_bits = bits;
    j_base = Achilles_smt.Term.fresh_counter_value ();
    j_fingerprint = Search.Shards.fingerprint ~bits ~config ~client ~server;
  }

type params = {
  heartbeat_interval : float;
  snapshot_interval : float;
      (* how often to piggyback an Obs.Snapshot on the heartbeat tick;
         0 (or negative) disables telemetry snapshots entirely *)
  poll_sleep : float; (* idle-loop sleep between mailbox polls *)
  orphan_timeout : float;
      (* exit if the coordinator has been silent this long while we are
         idle and asking for work (it crashed without draining us, or it
         is restarting — long enough to ride out a restart) *)
  fault_rate : float; (* per-heartbeat-tick death probability *)
  fault_seed : int;
}

let float_env name default =
  match Sys.getenv_opt name with
  | Some s -> ( match float_of_string_opt s with Some f -> f | None -> default)
  | None -> default

let int_env name default =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt s with Some i -> i | None -> default)
  | None -> default

let params_of_env () =
  {
    heartbeat_interval = float_env "ACHILLES_HEARTBEAT_INTERVAL" 0.5;
    snapshot_interval = float_env "ACHILLES_SNAPSHOT_INTERVAL" 1.0;
    poll_sleep = 0.02;
    orphan_timeout = float_env "ACHILLES_WORKER_ORPHAN_TIMEOUT" 30.0;
    fault_rate = float_env "ACHILLES_WORKER_FAULT_RATE" 0.0;
    fault_seed = int_env "ACHILLES_WORKER_FAULT_SEED" 0;
  }

exception Killed
(* raised by the in-process [die] used in tests and benchmarks: simulates
   SIGKILL at poll granularity without taking the host process down *)

type t = {
  wid : int;
  epoch : int;
  workdir : string;
  job : job;
  params : params;
  inbox : Lease.Mailbox.t; (* to the coordinator *)
  mybox : Lease.Mailbox.t; (* from the coordinator *)
  rng : Random.State.t;
  die : unit -> unit;
  mutable drain : bool;
  mutable pending_grant : (int * int) option;
  mutable saw_wait : bool;
  mutable last_heartbeat : float;
  mutable last_snapshot : float;
}

let send w msg = Lease.Mailbox.send w.inbox (Lease.encode_to_coordinator msg)

(* The worker's cumulative metrics state: Obs.aggregate plus the solver's
   own stats (cache hit/miss exist only as trace events otherwise)
   injected as counters so the coordinator's status can sum them. *)
let telemetry_snapshot () =
  let snap = Obs.aggregate () in
  let st = Achilles_smt.Solver.aggregate_stats () in
  let solver_counters =
    List.filter
      (fun (_, n) -> n > 0)
      [
        ("solver.queries", st.Achilles_smt.Solver.queries);
        ("solver.cache_hits", st.Achilles_smt.Solver.cache_hits);
        ("solver.cache_misses", st.Achilles_smt.Solver.cache_misses);
      ]
  in
  {
    snap with
    Obs.counters =
      List.sort
        (fun (a, _) (b, _) -> String.compare a b)
        (solver_counters @ snap.Obs.counters);
  }

let send_snapshot w ~shard =
  if w.params.snapshot_interval > 0. then
    send w (Lease.Snapshot { wid = w.wid; shard; snap = telemetry_snapshot () })

let snapshot_tick w ~shard ~now =
  if
    w.params.snapshot_interval > 0.
    && now -. w.last_snapshot >= w.params.snapshot_interval
  then begin
    w.last_snapshot <- now;
    send_snapshot w ~shard
  end

let maybe_die w =
  if w.params.fault_rate > 0. then
    if Random.State.float w.rng 1.0 < w.params.fault_rate then begin
      Lease.emit_worker_event ~name:"fault_kill"
        ~args:[ ("wid", Obs.I w.wid); ("epoch", Obs.I w.epoch) ];
      w.die ()
    end

(* Consume everything the coordinator sent us. At most one grant can be
   outstanding (we only request when idle), so keeping the latest is
   enough; a Drain latches. *)
let consume_mailbox w =
  List.iter
    (fun line ->
      match Lease.parse_to_worker line with
      | Some (Lease.Grant { shard; token }) ->
          w.pending_grant <- Some (shard, token)
      | Some Lease.Drain -> w.drain <- true
      | Some Lease.Wait -> w.saw_wait <- true
      | None -> ())
    (Lease.Mailbox.recv w.mybox)

(* The heartbeat tick, grafted onto the search's cancellation poll. *)
let heartbeat_tick w ~shard ~token =
  let now = Unix.gettimeofday () in
  if now -. w.last_heartbeat >= w.params.heartbeat_interval then begin
    w.last_heartbeat <- now;
    maybe_die w;
    consume_mailbox w;
    send w (Lease.Heartbeat { wid = w.wid; shard; token });
    snapshot_tick w ~shard ~now
  end

let run_shard w ~shard ~token ~started =
  let job = w.job in
  let base_cancel = job.j_config.Search.cancel in
  let config =
    {
      job.j_config with
      Search.cancel =
        (fun () ->
          heartbeat_tick w ~shard ~token;
          base_cancel ());
    }
  in
  w.last_heartbeat <- Unix.gettimeofday ();
  match
    (* the same chaos hook the in-process shard attempts honor — raising
       simulates a shard crash; here it exercises reassignment instead of
       in-place retry. [Killed] must escape: it is a (simulated) death of
       the whole worker, not a shard failure. *)
    (match job.j_config.Search.chaos with
    | Some hook -> hook ~shard_index:shard ~attempt:token
    | None -> ());
    Search.Shards.explore ~config ~different_from:job.j_different_from
      ~client:job.j_client ~server:job.j_server ~bits:job.j_bits
      ~base:job.j_base ~started shard
  with
  | Some out, _ ->
      Search.Shards.write
        ~file:(Lease.checkpoint_file ~workdir:w.workdir ~shard ~token)
        ~fingerprint:job.j_fingerprint ~idx:shard out;
      send w (Lease.Completed { wid = w.wid; shard; token });
      Lease.emit_worker_event ~name:"shard_done"
        ~args:
          [ ("wid", Obs.I w.wid); ("shard", Obs.I shard); ("token", Obs.I token) ]
  | None, abandoned ->
      (* cancelled mid-shard: a partial log must not be merged *)
      send w (Lease.Failed { wid = w.wid; shard; token; abandoned });
      Lease.emit_worker_event ~name:"shard_abandoned"
        ~args:
          [ ("wid", Obs.I w.wid); ("shard", Obs.I shard); ("token", Obs.I token) ]
  | exception Killed -> raise Killed
  | exception _ ->
      (* a crashing shard (solver bug, full disk) fails the lease, not the
         worker: the coordinator reassigns within the shard's budget *)
      send w (Lease.Failed { wid = w.wid; shard; token; abandoned = 0 });
      Lease.emit_worker_event ~name:"shard_crashed"
        ~args:
          [ ("wid", Obs.I w.wid); ("shard", Obs.I shard); ("token", Obs.I token) ]

let run ~workdir ~wid ?(epoch = 0) ?params ?die ~job () =
  let params = match params with Some p -> p | None -> params_of_env () in
  let die =
    match die with
    | Some d -> d
    | None ->
        fun () ->
          (* _exit skips at_exit: close the trace here or a fault-injected
             kill leaves a dangling (though still line-complete) stream *)
          Obs.Trace.disable ();
          Unix._exit 137
  in
  let w =
    {
      wid;
      epoch;
      workdir;
      job;
      params;
      inbox = Lease.Mailbox.attach (Lease.inbox_dir workdir);
      mybox = Lease.Mailbox.attach (Lease.outbox_dir workdir wid);
      rng = Random.State.make [| params.fault_seed; wid; epoch; 0x5eed |];
      die;
      drain = false;
      pending_grant = None;
      saw_wait = false;
      last_heartbeat = Unix.gettimeofday ();
      last_snapshot = Unix.gettimeofday ();
    }
  in
  let started = Unix.gettimeofday () in
  Lease.emit_worker_event ~name:"start"
    ~args:[ ("wid", Obs.I wid); ("epoch", Obs.I epoch) ];
  send w (Lease.Hello { wid; pid = Unix.getpid () });
  let cancel = job.j_config.Search.cancel in
  (* Idle loop: request, poll for the reply, run grants, exit on drain,
     cancellation, or a silent coordinator. *)
  let requested = ref false in
  let last_seen = ref (Unix.gettimeofday ()) in
  let orphaned = ref false in
  while
    (not w.drain) && (not !orphaned) && not (cancel ())
  do
    consume_mailbox w;
    match w.pending_grant with
    | Some (shard, token) ->
        w.pending_grant <- None;
        requested := false;
        last_seen := Unix.gettimeofday ();
        maybe_die w;
        run_shard w ~shard ~token ~started
    | None ->
        if w.drain then ()
        else if not !requested then begin
          send w (Lease.Request { wid });
          requested := true
        end
        else begin
          Unix.sleepf params.poll_sleep;
          snapshot_tick w ~shard:(-1) ~now:(Unix.gettimeofday ());
          w.saw_wait <- false;
          consume_mailbox w;
          (* any reply (grant, wait, drain) proves the coordinator is
             alive; Wait clears [requested] so we ask again *)
          if w.saw_wait then begin
            last_seen := Unix.gettimeofday ();
            requested := false
          end
          else if w.pending_grant <> None || w.drain then
            last_seen := Unix.gettimeofday ()
          else if Unix.gettimeofday () -. !last_seen > params.orphan_timeout
          then begin
            Lease.emit_worker_event ~name:"orphaned"
              ~args:[ ("wid", Obs.I wid) ];
            orphaned := true
          end
        end
  done;
  (* final snapshot so the coordinator's status reflects finished work *)
  send_snapshot w ~shard:(-1);
  send w (Lease.Bye { wid });
  Lease.emit_worker_event ~name:"bye"
    ~args:
      [
        ("wid", Obs.I wid);
        ("drain", Obs.B w.drain);
        ("orphaned", Obs.B !orphaned);
      ]
