(** Atomically-updated run status for a distributed search.

    The coordinator aggregates worker telemetry snapshots (piggybacked on
    heartbeats as {!Lease.to_coordinator.Snapshot} messages) and mirrors
    the run's state to [workdir/status.json] through the atomic-write
    discipline, so [achilles status --work-dir DIR] renders a consistent
    picture of a live run — or the last known picture of a crashed one —
    without talking to any process.

    Caveat: snapshots are cumulative per {e process}. With real worker
    processes (the headline use) per-worker numbers are exact; with
    in-process domain workers (tests/benchmarks) every worker reports the
    shared process aggregate, so per-worker sums overcount. *)

val version : int

val status_file : string -> string
(** [workdir/status.json]. *)

type worker = {
  w_wid : int;
  w_pid : int;  (** [-1] when unknown *)
  w_epoch : int;  (** respawns of this slot so far *)
  w_last_seen : float;  (** epoch seconds of the last message from it *)
  w_shard : int;  (** currently leased shard, [-1] when idle *)
  w_phase : string;  (** dominant phase since its previous snapshot *)
  w_queries : int;  (** cumulative solver queries it reported *)
}

type t = {
  s_run_id : string;
  s_state : string;  (** ["running"] or ["done"] *)
  s_updated : float;
  s_started : float;
  s_shards_total : int;
  s_done : int;
  s_leased : int;
  s_pending : int;
  s_uncovered : int;
  s_reassignments : int;
  s_queries : int;
  s_cache_hits : int;
  s_cache_misses : int;
  s_workers : worker list;
  s_counters : (string * int) list;  (** merged worker counters, sorted *)
}

val queries_per_sec : t -> float
val cache_hit_rate : t -> float

val to_json : t -> Achilles_obs.Obs.Json.v
val of_json : Achilles_obs.Obs.Json.v -> (t, string) result

val save : workdir:string -> t -> bool
(** Atomic write to {!status_file}; [false] on I/O failure (a status write
    must never take the run down). *)

val load : workdir:string -> (t, string) result

val pp : ?now:float -> Format.formatter -> t -> unit
(** Human rendering; liveness ages are relative to [now] (default: the
    current time). *)
