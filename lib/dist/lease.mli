(** Substrate of the multi-process search: atomic file primitives,
    directory mailboxes, wire messages, lease files, and the coordinator's
    fencing-token lease table.

    The protocol is coordinator-authoritative: workers never take a shard
    by themselves, they are {e granted} leases, and every grant carries a
    fencing token strictly greater than any earlier grant of that shard.
    Completion is accepted only from the current token, so a
    presumed-dead worker finishing late can never race its replacement
    into the merge. All disk writes go through temp-file + rename; a
    writer killed at any instruction leaves either the old file or the
    new one, never a torn read. *)

(** {1 Directory layout}

    A distributed run lives under one work directory:
    {v
    workdir/
      manifest            run parameters, written once by the coordinator
      inbox/              worker -> coordinator messages
      outbox-NNN/         coordinator -> worker NNN messages
      shards/             token-suffixed shard checkpoints
      leases/             live lease mirror files (crash recovery)
    v} *)

val inbox_dir : string -> string
val outbox_dir : string -> int -> string
val shards_dir : string -> string
val leases_dir : string -> string
val manifest_file : string -> string

val checkpoint_file : workdir:string -> shard:int -> token:int -> string
(** [shards/shard-NNNN.t<token>.ckpt] — token-suffixed so two workers
    racing one shard write {e distinct} files and only the accepted
    token's file is ever merged. *)

val lease_file : workdir:string -> shard:int -> string
val ensure_dir : string -> unit

(** {1 Atomic files} *)

val atomic_write : path:string -> string -> unit
(** Write-to-temp, fsync, rename. The temp name is pid-qualified. *)

val read_file : string -> string option
(** Whole-file read; [None] when missing or unreadable. *)

(** {1 Mailboxes}

    One message per file, renamed into the directory. Per-sender order is
    preserved; unparseable or foreign files are deleted and ignored so a
    half-written file can never wedge the protocol. *)
module Mailbox : sig
  type t

  val attach : string -> t
  (** Create the directory if needed and attach. *)

  val send : t -> string -> unit
  (** Never raises: a vanished mailbox means the peer is gone, which the
      caller's liveness handling deals with. *)

  val recv : t -> string list
  (** Drain all pending messages, oldest first. *)
end

val purge_mailboxes : string -> unit
(** Delete every pending message in the inbox and all worker outboxes.
    A starting coordinator calls this before spawning anyone: mailbox
    contents are ephemeral protocol state, and replaying the previous
    incarnation's traffic (say, a leftover [Drain]) would poison the new
    run. Checkpoints and lease files are the only durable state. *)

(** {1 Wire messages} *)

type to_coordinator =
  | Hello of { wid : int; pid : int }
  | Request of { wid : int }  (** idle worker asking for a shard *)
  | Heartbeat of { wid : int; shard : int; token : int }
  | Snapshot of { wid : int; shard : int; snap : Achilles_obs.Obs.snapshot }
      (** periodic telemetry: the worker's cumulative metrics state
          ({!Achilles_obs.Obs.Snapshot} codec, multi-line message).
          [shard] is the shard currently held, [-1] when idle. Purely
          observational — never affects leases or the merge. *)
  | Completed of { wid : int; shard : int; token : int }
      (** checkpoint for [token] is on disk *)
  | Failed of { wid : int; shard : int; token : int; abandoned : int }
  | Bye of { wid : int }

type to_worker =
  | Grant of { shard : int; token : int }
  | Wait  (** nothing grantable right now; ask again *)
  | Drain  (** finish the current shard (if any) and exit *)

val encode_to_coordinator : to_coordinator -> string
val parse_to_coordinator : string -> to_coordinator option
val encode_to_worker : to_worker -> string
val parse_to_worker : string -> to_worker option

(** {1 Lease files}

    The in-memory table is authoritative; each live lease is mirrored to
    [leases/shard-NNNN.lease] so a restarted coordinator can recover the
    fencing floor — tokens must keep growing across coordinator
    incarnations. *)

val write_lease :
  workdir:string -> shard:int -> token:int -> worker:int -> deadline:float -> unit

val remove_lease : workdir:string -> shard:int -> unit

val read_lease : workdir:string -> shard:int -> (int * int * float) option
(** [(token, worker, deadline)]. *)

(** {1 The lease table} *)

module Table : sig
  type shard_state =
    | Pending
    | Leased of { worker : int; token : int; deadline : float }
    | Done of { token : int; resumed : bool }
    | Uncovered
        (** reassignment budget exhausted — reported as uncovered in the
            report's coverage block, never silently dropped *)

  type t

  val create : shards:int -> budget:int -> t
  (** [budget] = max assignments per shard before it degrades to
      [Uncovered]. *)

  val n_shards : t -> int
  val state : t -> int -> shard_state

  val observe_token : t -> shard:int -> token:int -> unit
  (** Raise the fencing floor above a token seen on disk (recovery). *)

  val mark_done_resumed : t -> shard:int -> token:int -> unit
  (** A valid checkpoint for [shard] already exists (resume). *)

  val grant : t -> now:float -> ttl:float -> worker:int -> (int * int) option
  (** Lease the lowest pending shard to [worker] until [now +. ttl].
      Returns [(shard, token)]; [None] when nothing is grantable. Charges
      the shard's budget; a budget-exhausted pending shard degrades to
      [Uncovered] instead of being granted. *)

  val renew :
    t -> now:float -> ttl:float -> worker:int -> shard:int -> token:int ->
    [ `Renewed | `Stale ]

  val complete : t -> shard:int -> token:int -> [ `Accepted | `Stale ]
  (** Fenced: accepted exactly once, only from the current leaseholder. *)

  val fail :
    t -> shard:int -> token:int -> [ `Reassignable | `Exhausted | `Stale ]

  val expire : t -> now:float -> (int * int * int) list
  (** Move every lease past its deadline back to [Pending] (or
      [Uncovered] when out of budget); returns expired
      [(shard, token, worker)]. *)

  val release_worker : t -> worker:int -> (int * int) list
  (** A worker died: expire its leases immediately; returns released
      [(shard, token)]. *)

  val give_up_pending : t -> int list
  (** Degrade every [Pending] shard to [Uncovered] — the spawner has given
      up on all workers, nothing will ever be granted again. *)

  val settled : t -> bool
  (** Every shard is [Done] or [Uncovered]. *)

  val pending_count : t -> int
  val leased_count : t -> int
  val uncovered : t -> int list
  val done_tokens : t -> (int * int * bool) list
  (** [(shard, token, resumed)] for every [Done] shard. *)

  val reassignments : t -> int
  (** Assignments spent beyond the first grant of each shard. *)
end

(** {1 Trace events} *)

val emit_lease_event :
  name:string -> args:(string * Achilles_obs.Obs.value) list -> unit

val emit_worker_event :
  name:string -> args:(string * Achilles_obs.Obs.value) list -> unit
