(* The substrate of the multi-process search protocol: atomic file
   primitives, directory mailboxes, the wire messages, lease files, and the
   coordinator's lease table with fencing tokens.

   Everything on disk is written via temp-file + rename, so a reader never
   observes a torn file, and a writer killed at any instruction leaves
   either the old state or the new — the same discipline as the shard
   checkpoints. Fencing: every grant of a shard carries a token strictly
   greater than any earlier grant of that shard; the coordinator accepts a
   completion only from the current token, so two workers racing one shard
   (a presumed-dead worker and its replacement) can never both merge. *)

module Obs = Achilles_obs.Obs

(* --- directory layout ------------------------------------------------------ *)

let inbox_dir workdir = Filename.concat workdir "inbox"
let outbox_dir workdir wid = Filename.concat workdir (Printf.sprintf "outbox-%03d" wid)
let shards_dir workdir = Filename.concat workdir "shards"
let leases_dir workdir = Filename.concat workdir "leases"
let manifest_file workdir = Filename.concat workdir "manifest"

let checkpoint_file ~workdir ~shard ~token =
  Filename.concat (shards_dir workdir)
    (Printf.sprintf "shard-%04d.t%d.ckpt" shard token)

let lease_file ~workdir ~shard =
  Filename.concat (leases_dir workdir) (Printf.sprintf "shard-%04d.lease" shard)

let ensure_dir dir =
  if not (Sys.file_exists dir) then (
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  else if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Dist: %S is not a directory" dir)

(* --- atomic file write ----------------------------------------------------- *)

let write_counter = Atomic.make 0

let atomic_write ~path content =
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
      (Atomic.fetch_and_add write_counter 1)
  in
  let oc = open_out_bin tmp in
  output_string oc content;
  flush oc;
  (try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ());
  close_out oc;
  Sys.rename tmp path

let read_file path =
  match open_in_bin path with
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Some (really_input_string ic (in_channel_length ic)))
  | exception Sys_error _ -> None

(* --- mailboxes -------------------------------------------------------------

   One message per file, atomically renamed into the mailbox directory.
   Names embed (sender pid, per-process sequence number) so per-sender
   order is preserved by the lexicographic directory sort and two senders
   can never collide. Receiving drains: read, delete, return in order.
   Unparseable files are deleted and ignored — a half-written or foreign
   file must never wedge the protocol. *)

module Mailbox = struct
  type t = { dir : string; seq : int Atomic.t }

  let attach dir =
    ensure_dir dir;
    { dir; seq = Atomic.make 0 }

  let send t line =
    let name =
      Printf.sprintf "m-%017.6f-%06d-%06d.msg" (Unix.gettimeofday ())
        (Unix.getpid ())
        (Atomic.fetch_and_add t.seq 1)
    in
    (try atomic_write ~path:(Filename.concat t.dir name) line
     with Sys_error _ | Unix.Unix_error _ -> ())
  (* a vanished mailbox means the peer is gone; the caller's liveness
     checks handle that, a send must not crash the sender *)

  let recv t =
    match Sys.readdir t.dir with
    | exception Sys_error _ -> []
    | names ->
        Array.sort compare names;
        Array.to_list names
        |> List.filter_map (fun name ->
               if Filename.check_suffix name ".msg" then begin
                 let path = Filename.concat t.dir name in
                 let content = read_file path in
                 (try Sys.remove path with Sys_error _ -> ());
                 content
               end
               else None)
end

(* Mailbox contents are ephemeral protocol state — a restarting
   coordinator must not replay the previous incarnation's traffic (a
   leftover Drain in an outbox would make every fresh worker quit on
   arrival). Only checkpoints and lease files are durable. *)
let purge_mailboxes workdir =
  let purge dir =
    match Sys.readdir dir with
    | exception Sys_error _ -> ()
    | names ->
        Array.iter
          (fun name ->
            if Filename.check_suffix name ".msg" then
              try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
          names
  in
  purge (inbox_dir workdir);
  match Sys.readdir workdir with
  | exception Sys_error _ -> ()
  | names ->
      Array.iter
        (fun name ->
          if String.length name >= 7 && String.sub name 0 7 = "outbox-" then
            purge (Filename.concat workdir name))
        names

(* --- wire messages ---------------------------------------------------------

   Space-separated text lines: debuggable with cat, no unmarshal surface.
   A malformed message parses to [None] and is dropped by the receiver. *)

type to_coordinator =
  | Hello of { wid : int; pid : int }
  | Request of { wid : int }
  | Heartbeat of { wid : int; shard : int; token : int }
  | Snapshot of { wid : int; shard : int; snap : Obs.snapshot }
  | Completed of { wid : int; shard : int; token : int }
  | Failed of { wid : int; shard : int; token : int; abandoned : int }
  | Bye of { wid : int }

type to_worker = Grant of { shard : int; token : int } | Wait | Drain

let encode_to_coordinator = function
  | Hello { wid; pid } -> Printf.sprintf "hello %d %d" wid pid
  | Request { wid } -> Printf.sprintf "request %d" wid
  | Heartbeat { wid; shard; token } ->
      Printf.sprintf "heartbeat %d %d %d" wid shard token
  | Snapshot { wid; shard; snap } ->
      (* multi-line: the header line, then the snapshot codec text — the
         mailbox transport carries whole files, not lines *)
      Printf.sprintf "snap %d %d\n%s" wid shard (Obs.Snapshot.encode snap)
  | Completed { wid; shard; token } ->
      Printf.sprintf "done %d %d %d" wid shard token
  | Failed { wid; shard; token; abandoned } ->
      Printf.sprintf "failed %d %d %d %d" wid shard token abandoned
  | Bye { wid } -> Printf.sprintf "bye %d" wid

let parse_to_coordinator content =
  (* Only the first line routes; a multi-line body (Snapshot) rides below
     it. Single-line messages see [rest = ""] exactly as before. *)
  let line, rest =
    match String.index_opt content '\n' with
    | Some i ->
        ( String.sub content 0 i,
          String.sub content (i + 1) (String.length content - i - 1) )
    | None -> (content, "")
  in
  match String.split_on_char ' ' (String.trim line) with
  | [ "hello"; w; p ] -> (
      match (int_of_string_opt w, int_of_string_opt p) with
      | Some wid, Some pid -> Some (Hello { wid; pid })
      | _ -> None)
  | [ "request"; w ] ->
      Option.map (fun wid -> Request { wid }) (int_of_string_opt w)
  | [ "heartbeat"; w; s; t ] -> (
      match (int_of_string_opt w, int_of_string_opt s, int_of_string_opt t) with
      | Some wid, Some shard, Some token -> Some (Heartbeat { wid; shard; token })
      | _ -> None)
  | [ "snap"; w; s ] -> (
      match (int_of_string_opt w, int_of_string_opt s) with
      | Some wid, Some shard -> (
          match Obs.Snapshot.decode rest with
          | Ok snap -> Some (Snapshot { wid; shard; snap })
          | Error _ -> None)
      | _ -> None)
  | [ "done"; w; s; t ] -> (
      match (int_of_string_opt w, int_of_string_opt s, int_of_string_opt t) with
      | Some wid, Some shard, Some token -> Some (Completed { wid; shard; token })
      | _ -> None)
  | [ "failed"; w; s; t; a ] -> (
      match
        ( int_of_string_opt w,
          int_of_string_opt s,
          int_of_string_opt t,
          int_of_string_opt a )
      with
      | Some wid, Some shard, Some token, Some abandoned ->
          Some (Failed { wid; shard; token; abandoned })
      | _ -> None)
  | [ "bye"; w ] -> Option.map (fun wid -> Bye { wid }) (int_of_string_opt w)
  | _ -> None

let encode_to_worker = function
  | Grant { shard; token } -> Printf.sprintf "grant %d %d" shard token
  | Wait -> "wait"
  | Drain -> "drain"

let parse_to_worker line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "grant"; s; t ] -> (
      match (int_of_string_opt s, int_of_string_opt t) with
      | Some shard, Some token -> Some (Grant { shard; token })
      | _ -> None)
  | [ "wait" ] -> Some Wait
  | [ "drain" ] -> Some Drain
  | _ -> None

(* --- lease files ------------------------------------------------------------

   The coordinator mirrors every live lease to
   [leases/shard-NNNN.lease] = "token worker deadline". The in-memory table
   stays authoritative; the file exists so a restarted coordinator (and a
   debugging human) can recover the fencing floor — tokens must keep
   growing across coordinator incarnations or an orphan of the previous
   incarnation could win a race against a fresh grant. *)

let write_lease ~workdir ~shard ~token ~worker ~deadline =
  atomic_write
    ~path:(lease_file ~workdir ~shard)
    (Printf.sprintf "%d %d %.6f" token worker deadline)

let remove_lease ~workdir ~shard =
  try Sys.remove (lease_file ~workdir ~shard) with Sys_error _ -> ()

let read_lease ~workdir ~shard =
  match read_file (lease_file ~workdir ~shard) with
  | None -> None
  | Some content -> (
      match String.split_on_char ' ' (String.trim content) with
      | [ t; w; d ] -> (
          match (int_of_string_opt t, int_of_string_opt w, float_of_string_opt d)
          with
          | Some token, Some worker, Some deadline ->
              Some (token, worker, deadline)
          | _ -> None)
      | _ -> None)

(* --- the coordinator's lease table ----------------------------------------- *)

module Table = struct
  type shard_state =
    | Pending
    | Leased of { worker : int; token : int; deadline : float }
    | Done of { token : int; resumed : bool }
    | Uncovered

  type t = {
    states : shard_state array;
    next_token : int array; (* per-shard fencing floor: next token to grant *)
    grants : int array; (* assignments spent per shard *)
    budget : int; (* max assignments per shard before Uncovered *)
  }

  let create ~shards ~budget =
    if shards < 1 then invalid_arg "Lease.Table.create: need at least 1 shard";
    if budget < 1 then invalid_arg "Lease.Table.create: need budget >= 1";
    {
      states = Array.make shards Pending;
      next_token = Array.make shards 1;
      grants = Array.make shards 0;
      budget;
    }

  let n_shards t = Array.length t.states
  let state t shard = t.states.(shard)

  (* Raise the fencing floor (resume/recovery: tokens seen on disk from an
     earlier coordinator incarnation must never be re-granted). *)
  let observe_token t ~shard ~token =
    if token >= t.next_token.(shard) then t.next_token.(shard) <- token + 1

  let mark_done_resumed t ~shard ~token =
    observe_token t ~shard ~token;
    t.states.(shard) <- Done { token; resumed = true }

  (* Grant the lowest pending shard. Budget is charged per grant: a shard
     that has already burned [budget] assignments is out of reassignment
     budget and degrades to Uncovered instead of being granted again. *)
  let grant t ~now ~ttl ~worker =
    let rec find shard =
      if shard >= Array.length t.states then None
      else
        match t.states.(shard) with
        | Pending when t.grants.(shard) < t.budget ->
            let token = t.next_token.(shard) in
            t.next_token.(shard) <- token + 1;
            t.grants.(shard) <- t.grants.(shard) + 1;
            t.states.(shard) <-
              Leased { worker; token; deadline = now +. ttl };
            Some (shard, token)
        | Pending ->
            t.states.(shard) <- Uncovered;
            find (shard + 1)
        | _ -> find (shard + 1)
    in
    find 0

  (* A heartbeat renews the lease only if it carries the current token; a
     stale heartbeat (the shard was reassigned from under the sender) tells
     the sender to abandon the shard. *)
  let renew t ~now ~ttl ~worker ~shard ~token =
    if shard < 0 || shard >= Array.length t.states then `Stale
    else
      match t.states.(shard) with
      | Leased l when l.token = token && l.worker = worker ->
          t.states.(shard) <- Leased { l with deadline = now +. ttl };
          `Renewed
      | _ -> `Stale

  (* Completion is fenced: only the current leaseholder's token is
     accepted, exactly once. Everything else — an expired lease's late
     finish, a duplicate message, a completion for an already-done shard —
     is [`Stale] and must not be merged. *)
  let complete t ~shard ~token =
    if shard < 0 || shard >= Array.length t.states then `Stale
    else
      match t.states.(shard) with
      | Leased l when l.token = token ->
          t.states.(shard) <- Done { token; resumed = false };
          `Accepted
      | _ -> `Stale

  (* The leaseholder reported failure (or its completed checkpoint failed
     validation): back to Pending if reassignment budget remains, else
     Uncovered. *)
  let fail t ~shard ~token =
    if shard < 0 || shard >= Array.length t.states then `Stale
    else
      match t.states.(shard) with
      | Leased l when l.token = token ->
          if t.grants.(shard) < t.budget then begin
            t.states.(shard) <- Pending;
            `Reassignable
          end
          else begin
            t.states.(shard) <- Uncovered;
            `Exhausted
          end
      | _ -> `Stale

  (* Expiry-driven reassignment: every lease whose deadline passed goes
     back to Pending (or Uncovered when the budget is spent). Returns the
     expired (shard, token, worker) triples so the caller can log and
     remove lease files. *)
  let expire t ~now =
    let expired = ref [] in
    Array.iteri
      (fun shard state ->
        match state with
        | Leased { worker; token; deadline } when deadline < now ->
            expired := (shard, token, worker) :: !expired;
            t.states.(shard) <-
              (if t.grants.(shard) < t.budget then Pending else Uncovered)
        | _ -> ())
      t.states;
    List.rev !expired

  (* A worker died: its leases expire immediately. *)
  let release_worker t ~worker =
    let released = ref [] in
    Array.iteri
      (fun shard state ->
        match state with
        | Leased l when l.worker = worker ->
            released := (shard, l.token) :: !released;
            t.states.(shard) <-
              (if t.grants.(shard) < t.budget then Pending else Uncovered)
        | _ -> ())
      t.states;
    List.rev !released

  (* No worker will ever come back (spawner gave up everywhere): whatever
     is still Pending can no longer be covered. *)
  let give_up_pending t =
    let given_up = ref [] in
    Array.iteri
      (fun shard state ->
        match state with
        | Pending ->
            given_up := shard :: !given_up;
            t.states.(shard) <- Uncovered
        | _ -> ())
      t.states;
    List.rev !given_up

  let settled t =
    Array.for_all
      (function Done _ | Uncovered -> true | Pending | Leased _ -> false)
      t.states

  let pending_count t =
    Array.fold_left
      (fun acc s -> match s with Pending -> acc + 1 | _ -> acc)
      0 t.states

  let leased_count t =
    Array.fold_left
      (fun acc s -> match s with Leased _ -> acc + 1 | _ -> acc)
      0 t.states

  let uncovered t =
    List.filter_map Fun.id
      (List.init (Array.length t.states) (fun shard ->
           match t.states.(shard) with
           | Uncovered -> Some shard
           | _ -> None))

  let done_tokens t =
    List.filter_map Fun.id
      (List.init (Array.length t.states) (fun shard ->
           match t.states.(shard) with
           | Done { token; resumed } -> Some (shard, token, resumed)
           | _ -> None))

  (* Extra assignments spent beyond the first grant of each shard — the
     distributed analogue of the in-process shard retry count. *)
  let reassignments t =
    Array.fold_left (fun acc g -> acc + max 0 (g - 1)) 0 t.grants
end

(* Shared by both sides: one trace event per protocol transition. *)
let emit_lease_event ~name ~args =
  Obs.count (Printf.sprintf "dist.lease.%s" name);
  if Obs.live () then Obs.emit ~kind:"lease" ~name ~args ()

let emit_worker_event ~name ~args =
  Obs.count (Printf.sprintf "dist.worker.%s" name);
  if Obs.live () then Obs.emit ~kind:"worker" ~name ~args ()
