open Achilles_core

type result = { analysis : Achilles.analysis; total_time : float }

let run ?mask ?(witnesses_per_path = 1) ?distinct_by ~layout ~clients ~server
    () =
  let t0 = Unix.gettimeofday () in
  let config =
    {
      Search.default_config with
      (* every Achilles-specific optimization disabled: vanilla exploration,
         differencing only once a path reaches its accept marker *)
      Search.drop_alive = false;
      Search.use_different_from = false;
      Search.prune_no_trojan = false;
      Search.mask = mask;
      Search.witnesses_per_path = witnesses_per_path;
      Search.distinct_by = distinct_by;
    }
  in
  let analysis =
    Achilles.analyze ~search_config:config ~layout ~clients ~server ()
  in
  { analysis; total_time = Unix.gettimeofday () -. t0 }
