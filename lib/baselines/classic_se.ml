open Achilles_smt
open Achilles_core
open Achilles_symvm

type result = {
  accepting : Predicate.server_path list;
  rejecting_paths : int;
  explore_time : float;
}

let explore ?(config = Interp.default_config) program =
  let t0 = Unix.gettimeofday () in
  let accepting = ref [] in
  let rejecting = ref 0 in
  let hooks =
    {
      Interp.default_hooks with
      Interp.on_terminal =
        (fun st ->
          match st.State.status with
          | State.Accepted label -> (
              match st.State.msg_vars with
              | None -> ()
              | Some msg_vars ->
                  accepting :=
                    {
                      Predicate.sp_state_id = st.State.id;
                      label;
                      msg_vars;
                      sp_constraints = List.rev st.State.path;
                    }
                    :: !accepting)
          | State.Rejected _ | State.Finished -> incr rejecting
          | State.Dropped | State.Crashed _ | State.Running -> ());
    }
  in
  ignore (Interp.run ~config ~hooks program);
  {
    accepting = List.rev !accepting;
    rejecting_paths = !rejecting;
    explore_time = Unix.gettimeofday () -. t0;
  }

type enumeration = {
  messages : (Bv.t array * float) list;
  exhausted : bool;
  enumerate_time : float;
}

let witness_of_model vars model =
  Array.map
    (fun v ->
      match Model.find model v with
      | Some (Model.Vbv bv) -> bv
      | Some (Model.Vbool _) -> assert false
      | None -> Bv.zero 8)
    vars

let enumerate ?restrict ?distinct_by ~max_per_path accepting =
  let t0 = Unix.gettimeofday () in
  let messages = ref [] in
  let exhausted = ref true in
  List.iter
    (fun (sp : Predicate.server_path) ->
      let vars = sp.Predicate.msg_vars in
      let base =
        match restrict with
        | None -> sp.Predicate.sp_constraints
        | Some f -> f vars @ sp.Predicate.sp_constraints
      in
      let block witness =
        match distinct_by with
        | Some f -> f witness vars
        | None ->
            Term.not_
              (Term.and_l
                 (Array.to_list
                    (Array.mapi
                       (fun i v -> Term.eq (Term.var vars.(i)) (Term.const v))
                       witness)))
      in
      let rec go blocked n =
        if n >= max_per_path then exhausted := false
        else
          match Solver.get_model (List.rev_append blocked base) with
          | None -> ()
          | Some model ->
              let witness = witness_of_model vars model in
              messages := (witness, Unix.gettimeofday () -. t0) :: !messages;
              go (block witness :: blocked) (n + 1)
      in
      go [] 0)
    accepting;
  {
    messages = List.rev !messages;
    exhausted = !exhausted;
    enumerate_time = Unix.gettimeofday () -. t0;
  }
