(** Classic symbolic execution of the server, the paper's first baseline
    (§6.2, Table 1).

    Vanilla exploration enumerates the server's accepting paths and can then
    enumerate concrete accepted messages per path — but it has no notion of
    what clients can generate, so Trojan messages come out buried among
    valid ones. The experiments count how many of each a developer would
    have to sift through. *)

open Achilles_smt
open Achilles_core
open Achilles_symvm

type result = {
  accepting : Predicate.server_path list;
  rejecting_paths : int;
  explore_time : float;
}

val explore : ?config:Interp.config -> Ast.program -> result

type enumeration = {
  messages : (Bv.t array * float) list; (* message, seconds since start *)
  exhausted : bool; (* false when the per-path cap stopped enumeration *)
  enumerate_time : float;
}

val enumerate :
  ?restrict:(Term.var array -> Term.t list) ->
  ?distinct_by:(Bv.t array -> Term.var array -> Term.t) ->
  max_per_path:int ->
  Predicate.server_path list ->
  enumeration
(** Enumerate concrete messages satisfying each accepting path, blocking
    each found message (or class, via [distinct_by]) before re-solving.
    [restrict] adds constraints over the message bytes, e.g. a reduced
    alphabet that keeps the enumeration finite and comparable. *)
