(** Non-optimized symbolic constraint differencing, the §6.4 comparison.

    Runs unmodified symbolic execution on the clients and the server (no
    alive-set tracking, no differentFrom matrix, no state pruning) and only
    afterwards combines each accepting server path with the negation of
    every client path predicate. Functionally equivalent to Achilles but
    pays the full differencing cost on every accepting path — the paper
    measured 2h15 for this against Achilles' 1h03. *)

open Achilles_symvm

type result = {
  analysis : Achilles_core.Achilles.analysis;
  total_time : float;
}

val run :
  ?mask:string list ->
  ?witnesses_per_path:int ->
  ?distinct_by:
    (Achilles_smt.Bv.t array -> Achilles_smt.Term.var array -> Achilles_smt.Term.t) ->
  layout:Layout.t ->
  clients:Ast.program list ->
  server:Ast.program ->
  unit ->
  result
