(** Black-box fuzzing baseline (§6.2).

    Random messages are thrown at the concretely executed server; the run
    records throughput, how many messages were accepted, and — judged by an
    external oracle the fuzzer itself does not have — how many of the
    accepted messages were actually Trojan. The analytic helpers reproduce
    the paper's expected-discovery arithmetic. *)

open Achilles_smt
open Achilles_symvm

type verdict = Trojan | Valid | Rejected

type result = {
  tests : int;
  accepted : int; (* messages the server accepted: the fuzzer's "findings" *)
  trojans : int; (* accepted messages that really are Trojan (oracle) *)
  distinct_trojan_classes : int;
  wall_time : float;
  throughput_per_min : float;
}

val fuzz :
  ?seed:int ->
  server:Ast.program ->
  ?initial_globals:(string * Bv.t) list ->
  gen:(Random.State.t -> Bv.t array) ->
  oracle:(Bv.t array -> verdict) ->
  ?classify:(Bv.t array -> string option) ->
  budget:[ `Tests of int | `Seconds of float ] ->
  unit ->
  result

val random_bytes : size:int -> Random.State.t -> Bv.t array
(** Uniform random message bytes. *)

val expected_finds :
  trojan_messages:float -> space:float -> tests:float -> float
(** Expected number of Trojan messages hit by [tests] uniform draws from a
    [space]-sized message space containing [trojan_messages] Trojans — the
    paper's 0.00001-per-hour arithmetic. *)
