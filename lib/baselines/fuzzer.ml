open Achilles_smt
open Achilles_symvm

type verdict = Trojan | Valid | Rejected

type result = {
  tests : int;
  accepted : int;
  trojans : int;
  distinct_trojan_classes : int;
  wall_time : float;
  throughput_per_min : float;
}

let random_bytes ~size rng =
  Array.init size (fun _ -> Bv.of_int ~width:8 (Random.State.int rng 256))

let fuzz ?(seed = 42) ~server ?(initial_globals = []) ~gen ~oracle ?classify
    ~budget () =
  let rng = Random.State.make [| seed |] in
  let t0 = Unix.gettimeofday () in
  let continue tests =
    match budget with
    | `Tests n -> tests < n
    | `Seconds s -> Unix.gettimeofday () -. t0 < s
  in
  let tests = ref 0 in
  let accepted = ref 0 in
  let trojans = ref 0 in
  let classes = Hashtbl.create 16 in
  while continue !tests do
    incr tests;
    let message = gen rng in
    let outcome =
      Concrete.run ~incoming:[ message ] ~initial_globals server
    in
    if Concrete.accepted outcome then begin
      incr accepted;
      match oracle message with
      | Trojan ->
          incr trojans;
          (match classify with
          | Some f -> (
              match f message with
              | Some key -> Hashtbl.replace classes key ()
              | None -> ())
          | None -> ())
      | Valid | Rejected -> ()
    end
  done;
  let wall_time = Unix.gettimeofday () -. t0 in
  {
    tests = !tests;
    accepted = !accepted;
    trojans = !trojans;
    distinct_trojan_classes = Hashtbl.length classes;
    wall_time;
    throughput_per_min =
      (if wall_time > 0. then float_of_int !tests /. wall_time *. 60. else 0.);
  }

let expected_finds ~trojan_messages ~space ~tests =
  tests *. trojan_messages /. space
