(* Compile per-state Trojan queries into a decision DAG over message bytes.

   The compiler's job is existential-variable elimination: a Trojan query
   mentions the server's symbolic message bytes plus auxiliary variables
   (the negate operator's fresh-renamed client inputs, over-approximated
   server local state), and the solver decides it existentially. The filter
   must answer the same question from concrete bytes alone, so every
   auxiliary variable is resolved at compile time:

   - one-point rule: an [x = e] conjunct with [x] auxiliary and [x] not in
     [e] substitutes [e] for [x] (the negate operator's [field = renamed
     expression] equations unify this way with the server's byte terms);
   - equations between concatenations split segment-wise when the segment
     widths align, surfacing per-byte one-point opportunities;
   - atom-level QE: when an auxiliary variable's occurrences are confined
     to one atom (or negated atom), [∃x. atom] rewrites to an aux-free
     residual (e.g. [∃l. rid <> l] over a w-bit [l] is simply true);
   - leftovers are projected onto their message bytes by solver model
     enumeration (bounded), collapsed to unsigned ranges;
   - closed leftovers (no message bytes) are decided by one solver call.

   What survives all of that becomes a three-valued Unknown leaf: the
   filter reports Unknown_state rather than guessing. *)

open Achilles_smt
open Achilles_symvm
open Achilles_core
module T = Term
module Obs = Achilles_obs.Obs

(* --- IR -------------------------------------------------------------------- *)

type op =
  | Obyte of int (* message byte, 8-bit value *)
  | Oconst of Bv.t
  | Obool of bool
  | Ounknown (* three-valued bottom: verdict depends on untracked state *)
  | Onot of int
  | Oand of int * int
  | Oor of int * int
  | Oite of int * int * int
  | Oeq of int * int
  | Oult of int * int
  | Oslt of int * int
  | Oule of int * int
  | Osle of int * int
  | Oadd of int * int
  | Osub of int * int
  | Omul of int * int
  | Oudiv of int * int
  | Ourem of int * int
  | Obnot of int
  | Oband of int * int
  | Obor of int * int
  | Obxor of int * int
  | Oshl of int * int
  | Olshr of int * int
  | Oashr of int * int
  | Oconcat of int * int (* first operand holds the high bits *)
  | Oextract of int * int * int (* hi, lo, operand *)
  | Oinset of int * (int64 * int64) array
      (* unsigned membership of the operand in a union of inclusive ranges *)

type gate = { g_byte : int; g_lo : int; g_hi : int } (* inclusive bounds *)

type state_filter = {
  st_id : int;
  st_label : string;
  st_gates : gate array;
  st_root : int; (* boolean op index: the state's Trojan query *)
  st_ops : int array; (* ops reachable from the root, ascending *)
}

type t = {
  f_target : string;
  f_layout : string;
  f_message_size : int;
  f_unknowns : int;
  f_ops : op array;
  f_states : state_filter array;
}

type verdict = Accept | Trojan_suspect of int | Unknown_state

let target t = t.f_target
let layout_name t = t.f_layout
let message_size t = t.f_message_size
let state_count t = Array.length t.f_states
let op_count t = Array.length t.f_ops
let unknown_leaves t = t.f_unknowns

let state_label t id =
  Array.fold_left
    (fun acc st -> if st.st_id = id then Some st.st_label else acc)
    None t.f_states

(* --- static sorts (shared by the compiler's checks and decode validation) -- *)

type osort = SBool | SBv of int

exception Invalid_program of string

let op_sort ops sorts i =
  let s j =
    if j < 0 || j >= i then raise (Invalid_program "dangling op reference")
    else sorts.(j)
  in
  let bv j = match s j with SBv w -> w | SBool -> raise (Invalid_program "expected bitvector operand") in
  let boolean j = match s j with SBool -> () | SBv _ -> raise (Invalid_program "expected boolean operand") in
  let same_bv a b =
    let wa = bv a and wb = bv b in
    if wa <> wb then raise (Invalid_program "operand width mismatch");
    wa
  in
  match ops.(i) with
  | Obyte _ -> SBv 8
  | Oconst c -> SBv (Bv.width c)
  | Obool _ | Ounknown -> SBool
  | Onot a ->
      boolean a;
      SBool
  | Oand (a, b) | Oor (a, b) ->
      boolean a;
      boolean b;
      SBool
  | Oite (c, a, b) ->
      boolean c;
      if s a <> s b then raise (Invalid_program "ite branch sort mismatch");
      s a
  | Oeq (a, b) ->
      if s a <> s b then raise (Invalid_program "eq sort mismatch");
      SBool
  | Oult (a, b) | Oslt (a, b) | Oule (a, b) | Osle (a, b) ->
      ignore (same_bv a b);
      SBool
  | Oadd (a, b) | Osub (a, b) | Omul (a, b) | Oudiv (a, b) | Ourem (a, b)
  | Oband (a, b) | Obor (a, b) | Obxor (a, b) | Oshl (a, b) | Olshr (a, b)
  | Oashr (a, b) ->
      SBv (same_bv a b)
  | Obnot a -> SBv (bv a)
  | Oconcat (a, b) ->
      let w = bv a + bv b in
      if w > 64 then raise (Invalid_program "concat wider than 64 bits");
      SBv w
  | Oextract (hi, lo, a) ->
      let w = bv a in
      if not (0 <= lo && lo <= hi && hi < w) then
        raise (Invalid_program "extract out of range");
      SBv (hi - lo + 1)
  | Oinset (a, ranges) ->
      ignore (bv a);
      Array.iter
        (fun (lo, hi) ->
          if Int64.unsigned_compare lo hi > 0 then
            raise (Invalid_program "inset range inverted"))
        ranges;
      SBool

(* Sorts of every op, validating structure along the way. *)
let sorts_of ops =
  let sorts = Array.make (Array.length ops) SBool in
  Array.iteri (fun i _ -> sorts.(i) <- op_sort ops sorts i) ops;
  sorts

let validate ft =
  let n = Array.length ft.f_ops in
  if ft.f_message_size < 1 || ft.f_message_size > 0x10000 then
    raise (Invalid_program "implausible message size");
  Array.iteri
    (fun i o ->
      match o with
      | Obyte b ->
          if b < 0 || b >= ft.f_message_size then
            raise (Invalid_program "byte index out of range")
      | Oconst c ->
          if Bv.width c < 1 || Bv.width c > 64 then
            raise (Invalid_program "constant width out of range")
      | _ -> ignore i)
    ft.f_ops;
  let sorts = sorts_of ft.f_ops in
  Array.iter
    (fun st ->
      if st.st_root < 0 || st.st_root >= n then
        raise (Invalid_program "state root out of range");
      if sorts.(st.st_root) <> SBool then
        raise (Invalid_program "state root is not boolean");
      Array.iter
        (fun g ->
          if g.g_byte < 0 || g.g_byte >= ft.f_message_size then
            raise (Invalid_program "gate byte out of range");
          if g.g_lo < 0 || g.g_hi > 255 || g.g_lo > g.g_hi then
            raise (Invalid_program "gate bounds out of range"))
        st.st_gates)
    ft.f_states;
  ft

(* Ops reachable from a root, ascending. Operands always precede their op,
   so an ascending scan evaluates dependencies first. *)
let reachable ops root =
  let seen = Array.make (Array.length ops) false in
  let rec visit i =
    if not seen.(i) then begin
      seen.(i) <- true;
      match ops.(i) with
      | Obyte _ | Oconst _ | Obool _ | Ounknown -> ()
      | Onot a | Obnot a | Oextract (_, _, a) | Oinset (a, _) -> visit a
      | Oand (a, b)
      | Oor (a, b)
      | Oeq (a, b)
      | Oult (a, b)
      | Oslt (a, b)
      | Oule (a, b)
      | Osle (a, b)
      | Oadd (a, b)
      | Osub (a, b)
      | Omul (a, b)
      | Oudiv (a, b)
      | Ourem (a, b)
      | Oband (a, b)
      | Obor (a, b)
      | Obxor (a, b)
      | Oshl (a, b)
      | Olshr (a, b)
      | Oashr (a, b)
      | Oconcat (a, b) ->
          visit a;
          visit b
      | Oite (c, a, b) ->
          visit c;
          visit a;
          visit b
    end
  in
  visit root;
  let acc = ref [] in
  for i = Array.length ops - 1 downto 0 do
    if seen.(i) then acc := i :: !acc
  done;
  Array.of_list !acc

(* --- existential elimination ----------------------------------------------- *)

let has_aux is_aux t = List.exists is_aux (T.var_ids t)
let aux_ids is_aux t = List.filter is_aux (T.var_ids t)

let rec flatten_and t =
  match t.T.node with
  | T.And (a, b) -> flatten_and a @ flatten_and b
  | _ -> [ t ]

let rec segments t =
  match t.T.node with
  | T.Concat (a, b) -> segments a @ segments b
  | _ -> [ t ]

let bare_aux is_aux t =
  match t.T.node with
  | T.Var v when is_aux v.T.id -> Some v
  | _ -> None

(* [eq a b] between concatenations whose segment widths align pairwise
   splits into per-segment equations (surfacing one-point opportunities).
   [None] when the boundaries don't line up. *)
let split_eq a b =
  let sa = segments a and sb = segments b in
  if List.length sa <= 1 || List.length sa <> List.length sb then None
  else
    let rec go sa sb acc =
      match (sa, sb) with
      | [], [] -> Some (List.rev acc)
      | x :: xs, y :: ys when T.width_of x = T.width_of y ->
          go xs ys (T.eq x y :: acc)
      | _ -> None
    in
    go sa sb []

let smin w = Bv.make ~width:w (Int64.shift_left 1L (w - 1))
let smax w = Bv.lognot (smin w)

(* [∃x. atom] (or [∃x. ¬atom] with [neg]) where [x] is auxiliary, appears
   on exactly one side, and the other side [e] is aux-free: rewrite to an
   aux-free residual over [e]. *)
let qe_atom is_aux ~neg t =
  let free e = not (has_aux is_aux e) in
  let residual_bv mk e = Some (mk e) in
  match t.T.node with
  | T.Var v when is_aux v.T.id -> Some T.tru (* ∃x. x and ∃x. ¬x alike *)
  | T.Eq (a, b) -> (
      match (bare_aux is_aux a, bare_aux is_aux b) with
      | Some _, _ when free b -> Some T.tru
        (* positive: x := e; negated: every sort here has >= 2 values
           (booleans, or bitvectors of width >= 1) *)
      | _, Some _ when free a -> Some T.tru
      | _ -> None)
  | T.Ult (a, b) -> (
      match (bare_aux is_aux a, bare_aux is_aux b) with
      | Some _, _ when free b ->
          if neg then Some T.tru (* x >= e: x = ones *)
          else residual_bv (fun e -> T.neq e (T.const (Bv.zero (T.width_of e)))) b
      | _, Some _ when free a ->
          if neg then Some T.tru (* x <= e: x = 0 *)
          else residual_bv (fun e -> T.neq e (T.const (Bv.ones (T.width_of e)))) a
      | _ -> None)
  | T.Ule (a, b) -> (
      match (bare_aux is_aux a, bare_aux is_aux b) with
      | Some _, _ when free b ->
          if neg then
            residual_bv (fun e -> T.neq e (T.const (Bv.ones (T.width_of e)))) b
          else Some T.tru (* x = 0 *)
      | _, Some _ when free a ->
          if neg then
            residual_bv (fun e -> T.neq e (T.const (Bv.zero (T.width_of e)))) a
          else Some T.tru (* x = ones *)
      | _ -> None)
  | T.Slt (a, b) -> (
      match (bare_aux is_aux a, bare_aux is_aux b) with
      | Some _, _ when free b ->
          if neg then Some T.tru (* x >=s e: x = smax *)
          else residual_bv (fun e -> T.neq e (T.const (smin (T.width_of e)))) b
      | _, Some _ when free a ->
          if neg then Some T.tru (* x <=s e: x = smin *)
          else residual_bv (fun e -> T.neq e (T.const (smax (T.width_of e)))) a
      | _ -> None)
  | T.Sle (a, b) -> (
      match (bare_aux is_aux a, bare_aux is_aux b) with
      | Some _, _ when free b ->
          if neg then
            residual_bv (fun e -> T.neq e (T.const (smax (T.width_of e)))) b
          else Some T.tru (* x = smin *)
      | _, Some _ when free a ->
          if neg then
            residual_bv (fun e -> T.neq e (T.const (smin (T.width_of e)))) a
          else Some T.tru (* x = smax *)
      | _ -> None)
  | _ -> None

(* Group conjuncts into components connected by shared auxiliary ids. *)
let components is_aux conjs =
  let tagged = List.map (fun c -> (aux_ids is_aux c, [ c ])) conjs in
  let overlap a b = List.exists (fun id -> List.mem id b) a in
  let rec insert (ids, cs) = function
    | [] -> [ (ids, cs) ]
    | (ids', cs') :: rest ->
        if overlap ids ids' then
          insert (List.sort_uniq compare (ids @ ids'), cs @ cs') rest
        else (ids', cs') :: insert (ids, cs) rest
  in
  List.fold_left (fun acc grp -> insert grp acc) [] tagged
  |> List.map snd |> List.rev

let rec elim_term is_aux t =
  if not (has_aux is_aux t) then t
  else
    match t.T.node with
    | T.Or (a, b) ->
        (* ∃ always distributes over disjunction *)
        T.or_ (elim_term is_aux a) (elim_term is_aux b)
    | T.And _ -> elim_conj is_aux (flatten_and t)
    | T.Not a -> (
        match qe_atom is_aux ~neg:true a with
        | Some r -> r
        | None -> (
            (* ¬¬a, ¬(a ∨ b), ¬(a ∧ b) open up; anything else is stuck *)
            match a.T.node with
            | T.Not b -> elim_term is_aux b
            | T.Or (x, y) ->
                elim_conj is_aux (flatten_and (T.and_ (T.not_ x) (T.not_ y)))
            | T.And (x, y) ->
                elim_term is_aux (T.or_ (T.not_ x) (T.not_ y))
            | _ -> t))
    | T.Ite (c, x, y) when T.sort_of t = T.Bool ->
        elim_term is_aux (T.or_ (T.and_ c x) (T.and_ (T.not_ c) y))
    | _ -> ( match qe_atom is_aux ~neg:false t with Some r -> r | None -> t)

(* [∃(aux vars). AND conjs]. *)
and elim_conj is_aux conjs =
  (* split aligned concat equations to surface per-segment one-points *)
  let conjs =
    List.concat_map
      (fun c ->
        match c.T.node with
        | T.Eq (a, b)
          when has_aux is_aux c
               && bare_aux is_aux a = None
               && bare_aux is_aux b = None -> (
            match split_eq a b with Some eqs -> eqs | None -> [ c ])
        | _ -> [ c ])
      conjs
  in
  (* one-point rule: x = e with x auxiliary and x not in e *)
  let one_point =
    List.find_map
      (fun c ->
        match c.T.node with
        | T.Eq (a, b) -> (
            match bare_aux is_aux a with
            | Some v when not (List.mem v.T.id (T.var_ids b)) -> Some (c, v, b)
            | _ -> (
                match bare_aux is_aux b with
                | Some v when not (List.mem v.T.id (T.var_ids a)) ->
                    Some (c, v, a)
                | _ -> None))
        | _ -> None)
      conjs
  in
  match one_point with
  | Some (eq_conjunct, v, e) ->
      let subst_var (u : T.var) =
        if u.T.id = v.T.id then Some e else None
      in
      elim_conj is_aux
        (List.filter_map
           (fun c -> if c == eq_conjunct then None else Some (T.subst subst_var c))
           conjs)
  | None ->
      let plain, auxed = List.partition (fun c -> not (has_aux is_aux c)) conjs in
      let resolved =
        List.concat_map
          (fun comp ->
            match comp with
            | [ single ] ->
                (* all of its aux vars are private to it: descend *)
                let r = elim_term_descend is_aux single in
                flatten_and r
            | several -> (
                (* shared aux vars: eliminate the vars private to each
                   conjunct, then retry the component as a whole *)
                let all_ids = List.concat_map (aux_ids is_aux) several in
                let count id =
                  List.length
                    (List.filter (fun c -> List.mem id (aux_ids is_aux c)) several)
                in
                let progressed = ref false in
                let several' =
                  List.map
                    (fun c ->
                      let private_ids =
                        List.filter (fun id -> count id = 1) (aux_ids is_aux c)
                      in
                      if private_ids = [] then c
                      else
                        let is_private id =
                          is_aux id && List.mem id private_ids
                        in
                        let c' = elim_term is_private c in
                        if not (T.equal c' c) then progressed := true;
                        c')
                    several
                in
                ignore all_ids;
                if !progressed then flatten_and (elim_conj is_aux several')
                else several))
          (components is_aux auxed)
      in
      T.and_l (plain @ resolved)

(* elim_term, but never bounce straight back into elim_conj on an
   unchanged conjunction (the single-conjunct component case): descend
   into the conjunct's own structure. *)
and elim_term_descend is_aux t =
  match t.T.node with
  | T.And _ ->
      let parts = flatten_and t in
      if List.length parts > 1 then elim_conj is_aux parts else t
  | _ -> elim_term is_aux t

(* --- compilation ----------------------------------------------------------- *)

exception Unlowerable of string

type builder = {
  mutable ops_rev : op list;
  mutable n_ops : int;
  memo : int T.Tbl.t; (* term -> op index (hash-consed CSE) *)
  byte_of : (int, int) Hashtbl.t; (* message var id -> byte index *)
  mutable mapping : (int * int) list; (* the mapping the memo was built under *)
  mutable unknowns : int;
}

let push b o =
  let idx = b.n_ops in
  b.ops_rev <- o :: b.ops_rev;
  b.n_ops <- idx + 1;
  idx

let push_unknown b =
  b.unknowns <- b.unknowns + 1;
  push b Ounknown

let rec lower b t =
  match T.Tbl.find_opt b.memo t with
  | Some idx -> idx
  | None ->
      let idx =
        match t.T.node with
        | T.True -> push b (Obool true)
        | T.False -> push b (Obool false)
        | T.Const c -> push b (Oconst c)
        | T.Var v -> (
            match Hashtbl.find_opt b.byte_of v.T.id with
            | Some i -> push b (Obyte i)
            | None -> raise (Unlowerable "auxiliary variable survived"))
        | T.Not a -> push b (Onot (lower b a))
        | T.And (x, y) -> push b (Oand (lower b x, lower b y))
        | T.Or (x, y) -> push b (Oor (lower b x, lower b y))
        | T.Ite (c, x, y) -> push b (Oite (lower b c, lower b x, lower b y))
        | T.Eq (x, y) -> push b (Oeq (lower b x, lower b y))
        | T.Ult (x, y) -> push b (Oult (lower b x, lower b y))
        | T.Slt (x, y) -> push b (Oslt (lower b x, lower b y))
        | T.Ule (x, y) -> push b (Oule (lower b x, lower b y))
        | T.Sle (x, y) -> push b (Osle (lower b x, lower b y))
        | T.Add (x, y) -> push b (Oadd (lower b x, lower b y))
        | T.Sub (x, y) -> push b (Osub (lower b x, lower b y))
        | T.Mul (x, y) -> push b (Omul (lower b x, lower b y))
        | T.Udiv (x, y) -> push b (Oudiv (lower b x, lower b y))
        | T.Urem (x, y) -> push b (Ourem (lower b x, lower b y))
        | T.Bnot a -> push b (Obnot (lower b a))
        | T.Band (x, y) -> push b (Oband (lower b x, lower b y))
        | T.Bor (x, y) -> push b (Obor (lower b x, lower b y))
        | T.Bxor (x, y) -> push b (Obxor (lower b x, lower b y))
        | T.Shl (x, y) -> push b (Oshl (lower b x, lower b y))
        | T.Lshr (x, y) -> push b (Olshr (lower b x, lower b y))
        | T.Ashr (x, y) -> push b (Oashr (lower b x, lower b y))
        | T.Concat (x, y) ->
            if T.width_of t > 64 then
              raise (Unlowerable "concatenation wider than 64 bits")
            else push b (Oconcat (lower b x, lower b y))
        | T.Extract (hi, lo, a) -> push b (Oextract (hi, lo, lower b a))
      in
      T.Tbl.replace b.memo t idx;
      idx

(* Project an irreducible residue onto its message bytes by bounded model
   enumeration; the solutions, collapsed to unsigned ranges over the bytes'
   big-endian concatenation, become an [Oinset]. [None] past the budget. *)
let enumerate_residue ~budget b msg_vars t =
  let byte_idxs =
    T.var_ids t
    |> List.filter_map (fun id -> Hashtbl.find_opt b.byte_of id)
    |> List.sort_uniq compare
  in
  let nbytes = List.length byte_idxs in
  if nbytes = 0 || nbytes > 8 then None
  else
    let vars = List.map (fun i -> msg_vars.(i)) byte_idxs in
    let byte_value model v =
      match Model.find model v with
      | Some (Model.Vbv bv) -> bv
      | Some (Model.Vbool _) -> Bv.zero 8
      | None -> Bv.zero 8 (* unconstrained: zero is a valid completion *)
    in
    let rec enumerate blocked values n =
      if n > budget then None
      else
        match Solver.check (t :: blocked) with
        | Solver.Unknown -> None
        | Solver.Unsat -> Some values
        | Solver.Sat model ->
            let bytes = List.map (byte_value model) vars in
            let packed =
              List.fold_left
                (fun acc bv ->
                  Int64.logor (Int64.shift_left acc 8) (Bv.value bv))
                0L bytes
            in
            let block =
              T.not_
                (T.and_l
                   (List.map2 (fun v bv -> T.eq (T.var v) (T.const bv)) vars
                      bytes))
            in
            enumerate (block :: blocked) (packed :: values) (n + 1)
    in
    match enumerate [] [] 0 with
    | None -> None
    | Some values ->
        let sorted =
          List.sort_uniq Int64.unsigned_compare values
        in
        (* collapse adjacent values into inclusive ranges *)
        let ranges =
          List.fold_left
            (fun acc v ->
              match acc with
              | (lo, hi) :: rest when Int64.sub v hi = 1L -> (lo, v) :: rest
              | _ -> (v, v) :: acc)
            [] sorted
          |> List.rev |> Array.of_list
        in
        let value_op =
          match byte_idxs with
          | [] -> assert false
          | first :: rest ->
              List.fold_left
                (fun acc i -> push b (Oconcat (acc, push b (Obyte i))))
                (push b (Obyte first))
                rest
        in
        Some (push b (Oinset (value_op, ranges)))

(* One conjunct of a state's query -> a boolean op index, or [None] when
   the conjunct is constantly true. Raises [Exit] via the caller's check
   when constantly false (the state compiles away). *)
exception State_is_false

let compile_conjunct ~budget b msg_vars is_aux t =
  let t = if has_aux is_aux t then elim_conj is_aux (flatten_and t) else t in
  if T.equal t T.tru then None
  else if T.equal t T.fls then raise State_is_false
  else if not (has_aux is_aux t) then
    match lower b t with
    | idx -> Some idx
    | exception Unlowerable _ -> Some (push_unknown b)
  else
    (* aux vars survived elimination *)
    let msg_free =
      List.for_all (fun id -> not (Hashtbl.mem b.byte_of id)) (T.var_ids t)
    in
    if msg_free then
      (* closed existential: one solver call decides it for good *)
      match Solver.check [ t ] with
      | Solver.Sat _ -> None
      | Solver.Unsat -> raise State_is_false
      | Solver.Unknown -> Some (push_unknown b)
    else
      match enumerate_residue ~budget b msg_vars t with
      | Some idx -> Some idx
      | None -> Some (push_unknown b)

(* Byte-bound gates from the pure-message conjuncts: necessary conditions
   for the whole query, checked with two compares per gate before the DAG
   runs. *)
let gates_of direct byte_of =
  match Interval.analyze direct with
  | None -> None (* the pure-message part alone is unsatisfiable *)
  | Some bounds ->
      Some
        (List.filter_map
           (fun ((v : T.var), (b : Interval.bounds)) ->
             match Hashtbl.find_opt byte_of v.T.id with
             | Some byte when b.Interval.lo > 0L || b.Interval.hi < 255L ->
                 Some
                   {
                     g_byte = byte;
                     g_lo = Int64.to_int b.Interval.lo;
                     g_hi = Int64.to_int b.Interval.hi;
                   }
             | _ -> None)
           bounds
        |> Array.of_list)

let compile ?(enum_values = 512) ~target ~layout ~report () =
  let b =
    {
      ops_rev = [];
      n_ops = 0;
      memo = T.Tbl.create 1024;
      byte_of = Hashtbl.create 64;
      mapping = [];
      unknowns = 0;
    }
  in
  let states =
    List.filter_map
      (fun ((sp : Predicate.server_path), query) ->
        match query with
        | None -> None (* provably no Trojan reaches this state *)
        | Some terms -> (
            (* every bundled target uses one symbolic message for all
               states, so the memo (keyed by terms mentioning those vars)
               carries over; reset it if the var->byte mapping ever shifts *)
            let mapping =
              Array.to_list
                (Array.mapi (fun i (v : T.var) -> (v.T.id, i))
                   sp.Predicate.msg_vars)
            in
            if mapping <> b.mapping then begin
              T.Tbl.reset b.memo;
              Hashtbl.reset b.byte_of;
              List.iter (fun (id, i) -> Hashtbl.replace b.byte_of id i) mapping;
              b.mapping <- mapping
            end;
            let is_aux id = not (Hashtbl.mem b.byte_of id) in
            let conjuncts = T.dedup (List.concat_map flatten_and terms) in
            let direct =
              List.filter (fun c -> not (has_aux is_aux c)) conjuncts
            in
            match gates_of direct b.byte_of with
            | None -> None
            | Some gates -> (
                match
                  List.filter_map
                    (compile_conjunct ~budget:enum_values b
                       sp.Predicate.msg_vars is_aux)
                    conjuncts
                with
                | exception State_is_false -> None
                | [] ->
                    Some
                      {
                        st_id = sp.Predicate.sp_state_id;
                        st_label = sp.Predicate.label;
                        st_gates = gates;
                        st_root = push b (Obool true);
                        st_ops = [||];
                      }
                | roots ->
                    let root =
                      List.fold_left
                        (fun acc r -> push b (Oand (acc, r)))
                        (List.hd roots) (List.tl roots)
                    in
                    Some
                      {
                        st_id = sp.Predicate.sp_state_id;
                        st_label = sp.Predicate.label;
                        st_gates = gates;
                        st_root = root;
                        st_ops = [||];
                      })))
      (Search.trojan_queries report)
  in
  let ops = Array.of_list (List.rev b.ops_rev) in
  let states =
    List.map (fun st -> { st with st_ops = reachable ops st.st_root }) states
  in
  Obs.count ~n:b.unknowns "filter.compile.unknown_leaves";
  Obs.count ~n:(List.length states) "filter.compile.states";
  validate
    {
      f_target = target;
      f_layout = Layout.name layout;
      f_message_size = Layout.total_size layout;
      f_unknowns = b.unknowns;
      f_ops = ops;
      f_states = Array.of_list states;
    }

(* --- evaluation ------------------------------------------------------------ *)

type v = Vb of bool | Vv of Bv.t | Vu

type evaluator = {
  ft : t;
  msg : int array; (* current message bytes *)
  vals : v array;
  stamp : int array;
  mutable tick : int;
}

let evaluator ft =
  {
    ft;
    msg = Array.make ft.f_message_size 0;
    vals = Array.make (max 1 (Array.length ft.f_ops)) (Vb false);
    stamp = Array.make (max 1 (Array.length ft.f_ops)) 0;
    tick = 0;
  }

let eval_op ev i =
  let ops = ev.ft.f_ops in
  let v j = ev.vals.(j) in
  let bv j = match v j with Vv x -> Some x | _ -> None in
  let bin f a b =
    match (bv a, bv b) with Some x, Some y -> Vv (f x y) | _ -> Vu
  in
  let cmp f a b =
    match (bv a, bv b) with Some x, Some y -> Vb (f x y) | _ -> Vu
  in
  match ops.(i) with
  | Obyte k -> Vv (Bv.of_int ~width:8 ev.msg.(k))
  | Oconst c -> Vv c
  | Obool x -> Vb x
  | Ounknown -> Vu
  | Onot a -> (
      match v a with Vb x -> Vb (not x) | _ -> Vu)
  | Oand (a, b) -> (
      match (v a, v b) with
      | Vb false, _ | _, Vb false -> Vb false
      | Vb true, Vb true -> Vb true
      | _ -> Vu)
  | Oor (a, b) -> (
      match (v a, v b) with
      | Vb true, _ | _, Vb true -> Vb true
      | Vb false, Vb false -> Vb false
      | _ -> Vu)
  | Oite (c, a, b) -> (
      match v c with Vb true -> v a | Vb false -> v b | _ -> Vu)
  | Oeq (a, b) -> (
      match (v a, v b) with
      | Vv x, Vv y -> Vb (Bv.equal x y)
      | Vb x, Vb y -> Vb (x = y)
      | _ -> Vu)
  | Oult (a, b) -> cmp Bv.ult a b
  | Oslt (a, b) -> cmp Bv.slt a b
  | Oule (a, b) -> cmp Bv.ule a b
  | Osle (a, b) -> cmp Bv.sle a b
  | Oadd (a, b) -> bin Bv.add a b
  | Osub (a, b) -> bin Bv.sub a b
  | Omul (a, b) -> bin Bv.mul a b
  | Oudiv (a, b) -> bin Bv.udiv a b
  | Ourem (a, b) -> bin Bv.urem a b
  | Obnot a -> ( match bv a with Some x -> Vv (Bv.lognot x) | None -> Vu)
  | Oband (a, b) -> bin Bv.logand a b
  | Obor (a, b) -> bin Bv.logor a b
  | Obxor (a, b) -> bin Bv.logxor a b
  | Oshl (a, b) -> bin Bv.shl a b
  | Olshr (a, b) -> bin Bv.lshr a b
  | Oashr (a, b) -> bin Bv.ashr a b
  | Oconcat (a, b) -> bin Bv.concat a b
  | Oextract (hi, lo, a) -> (
      match bv a with Some x -> Vv (Bv.extract ~hi ~lo x) | None -> Vu)
  | Oinset (a, ranges) -> (
      match bv a with
      | None -> Vu
      | Some x ->
          let value = Bv.value x in
          let n = Array.length ranges in
          let rec member k =
            if k >= n then false
            else
              let lo, hi = ranges.(k) in
              (Int64.unsigned_compare lo value <= 0
              && Int64.unsigned_compare value hi <= 0)
              || member (k + 1)
          in
          Vb (member 0))

let eval_state ev st =
  let gates = st.st_gates in
  let n_gates = Array.length gates in
  let rec gate_ok i =
    i >= n_gates
    ||
    let g = gates.(i) in
    let byte = ev.msg.(g.g_byte) in
    byte >= g.g_lo && byte <= g.g_hi && gate_ok (i + 1)
  in
  if not (gate_ok 0) then Vb false
  else begin
    let ops = st.st_ops in
    for k = 0 to Array.length ops - 1 do
      let i = ops.(k) in
      if ev.stamp.(i) <> ev.tick then begin
        ev.vals.(i) <- eval_op ev i;
        ev.stamp.(i) <- ev.tick
      end
    done;
    ev.vals.(st.st_root)
  end

let verdict_core ev =
  ev.tick <- ev.tick + 1;
  let states = ev.ft.f_states in
  let n = Array.length states in
  let rec scan i unknown =
    if i >= n then if unknown then Unknown_state else Accept
    else
      match eval_state ev states.(i) with
      | Vb true -> Trojan_suspect states.(i).st_id
      | Vb false -> scan (i + 1) unknown
      | Vu -> scan (i + 1) true
      | Vv _ -> assert false (* roots are validated boolean *)
  in
  scan 0 false

let verdict_bytes ev bytes =
  if Stdlib.Bytes.length bytes <> ev.ft.f_message_size then Unknown_state
  else begin
    for i = 0 to ev.ft.f_message_size - 1 do
      ev.msg.(i) <- Char.code (Stdlib.Bytes.get bytes i)
    done;
    verdict_core ev
  end

let verdict ev message =
  if Array.length message <> ev.ft.f_message_size then Unknown_state
  else begin
    Array.iteri
      (fun i bv ->
        if Bv.width bv <> 8 then
          invalid_arg "Filter.verdict: message bytes must be 8 bits wide";
        ev.msg.(i) <- Bv.to_int bv)
      message;
    verdict_core ev
  end

(* --- serialization --------------------------------------------------------- *)

let magic = "ACHFLT01"

let encode_payload ft =
  let buf = Buffer.create 4096 in
  let u8 n = Buffer.add_char buf (Char.chr (n land 0xff)) in
  let u32 n =
    u8 (n lsr 24);
    u8 (n lsr 16);
    u8 (n lsr 8);
    u8 n
  in
  let i64 n = Buffer.add_int64_be buf n in
  let str s =
    if String.length s > 0xffff then invalid_arg "Filter: string too long";
    u8 (String.length s lsr 8);
    u8 (String.length s);
    Buffer.add_string buf s
  in
  str ft.f_target;
  str ft.f_layout;
  u32 ft.f_message_size;
  u32 ft.f_unknowns;
  u32 (Array.length ft.f_ops);
  Array.iter
    (fun o ->
      match o with
      | Obyte i ->
          u8 0;
          u32 i
      | Oconst c ->
          u8 1;
          u8 (Bv.width c);
          i64 (Bv.value c)
      | Obool false -> u8 2
      | Obool true -> u8 3
      | Ounknown -> u8 4
      | Onot a ->
          u8 5;
          u32 a
      | Oand (a, b) ->
          u8 6;
          u32 a;
          u32 b
      | Oor (a, b) ->
          u8 7;
          u32 a;
          u32 b
      | Oite (c, a, b) ->
          u8 8;
          u32 c;
          u32 a;
          u32 b
      | Oeq (a, b) ->
          u8 9;
          u32 a;
          u32 b
      | Oult (a, b) ->
          u8 10;
          u32 a;
          u32 b
      | Oslt (a, b) ->
          u8 11;
          u32 a;
          u32 b
      | Oule (a, b) ->
          u8 12;
          u32 a;
          u32 b
      | Osle (a, b) ->
          u8 13;
          u32 a;
          u32 b
      | Oadd (a, b) ->
          u8 14;
          u32 a;
          u32 b
      | Osub (a, b) ->
          u8 15;
          u32 a;
          u32 b
      | Omul (a, b) ->
          u8 16;
          u32 a;
          u32 b
      | Oudiv (a, b) ->
          u8 17;
          u32 a;
          u32 b
      | Ourem (a, b) ->
          u8 18;
          u32 a;
          u32 b
      | Obnot a ->
          u8 19;
          u32 a
      | Oband (a, b) ->
          u8 20;
          u32 a;
          u32 b
      | Obor (a, b) ->
          u8 21;
          u32 a;
          u32 b
      | Obxor (a, b) ->
          u8 22;
          u32 a;
          u32 b
      | Oshl (a, b) ->
          u8 23;
          u32 a;
          u32 b
      | Olshr (a, b) ->
          u8 24;
          u32 a;
          u32 b
      | Oashr (a, b) ->
          u8 25;
          u32 a;
          u32 b
      | Oconcat (a, b) ->
          u8 26;
          u32 a;
          u32 b
      | Oextract (hi, lo, a) ->
          u8 27;
          u8 hi;
          u8 lo;
          u32 a
      | Oinset (a, ranges) ->
          u8 28;
          u32 a;
          u32 (Array.length ranges);
          Array.iter
            (fun (lo, hi) ->
              i64 lo;
              i64 hi)
            ranges)
    ft.f_ops;
  u32 (Array.length ft.f_states);
  Array.iter
    (fun st ->
      u32 st.st_id;
      str st.st_label;
      u32 (Array.length st.st_gates);
      Array.iter
        (fun g ->
          u32 g.g_byte;
          u8 g.g_lo;
          u8 g.g_hi)
        st.st_gates;
      u32 st.st_root)
    ft.f_states;
  Buffer.contents buf

let to_string ft =
  let payload = encode_payload ft in
  let buf = Buffer.create (String.length payload + 32) in
  Buffer.add_string buf magic;
  Buffer.add_int32_be buf (Int32.of_int (String.length payload));
  Buffer.add_string buf payload;
  Buffer.add_string buf (Digest.string payload);
  Buffer.contents buf

exception Decode_error of string

let of_string s =
  let fail msg = raise (Decode_error msg) in
  try
    if String.length s < 8 + 4 + 16 then fail "truncated image";
    if String.sub s 0 8 <> magic then
      if String.sub s 0 6 = String.sub magic 0 6 then
        fail "unsupported filter format version"
      else fail "not a compiled filter (bad magic)";
    let payload_len =
      Int32.to_int (String.get_int32_be s 8)
    in
    if payload_len < 0 || String.length s <> 8 + 4 + payload_len + 16 then
      fail "truncated or oversized image";
    let payload = String.sub s 12 payload_len in
    let digest = String.sub s (12 + payload_len) 16 in
    if Digest.string payload <> digest then
      fail "payload digest mismatch (corrupt image)";
    let pos = ref 0 in
    let u8 () =
      if !pos >= payload_len then fail "truncated payload";
      let c = Char.code payload.[!pos] in
      incr pos;
      c
    in
    let u32 () =
      let a = u8 () in
      let b = u8 () in
      let c = u8 () in
      let d = u8 () in
      (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d
    in
    let i64 () =
      if !pos + 8 > payload_len then fail "truncated payload";
      let v = String.get_int64_be payload !pos in
      pos := !pos + 8;
      v
    in
    let str () =
      let hi = u8 () in
      let lo = u8 () in
      let len = (hi lsl 8) lor lo in
      if !pos + len > payload_len then fail "truncated payload";
      let s = String.sub payload !pos len in
      pos := !pos + len;
      s
    in
    let f_target = str () in
    let f_layout = str () in
    let f_message_size = u32 () in
    let f_unknowns = u32 () in
    let n_ops = u32 () in
    if n_ops > payload_len then fail "implausible op count";
    let decode_op () =
      let pair mk =
        let a = u32 () in
        let b = u32 () in
        mk a b
      in
      match u8 () with
      | 0 -> Obyte (u32 ())
      | 1 ->
          let w = u8 () in
          if w < 1 || w > 64 then fail "constant width out of range";
          Oconst (Bv.make ~width:w (i64 ()))
      | 2 -> Obool false
      | 3 -> Obool true
      | 4 -> Ounknown
      | 5 -> Onot (u32 ())
      | 6 -> pair (fun a b -> Oand (a, b))
      | 7 -> pair (fun a b -> Oor (a, b))
      | 8 ->
          let c = u32 () in
          pair (fun a b -> Oite (c, a, b))
      | 9 -> pair (fun a b -> Oeq (a, b))
      | 10 -> pair (fun a b -> Oult (a, b))
      | 11 -> pair (fun a b -> Oslt (a, b))
      | 12 -> pair (fun a b -> Oule (a, b))
      | 13 -> pair (fun a b -> Osle (a, b))
      | 14 -> pair (fun a b -> Oadd (a, b))
      | 15 -> pair (fun a b -> Osub (a, b))
      | 16 -> pair (fun a b -> Omul (a, b))
      | 17 -> pair (fun a b -> Oudiv (a, b))
      | 18 -> pair (fun a b -> Ourem (a, b))
      | 19 -> Obnot (u32 ())
      | 20 -> pair (fun a b -> Oband (a, b))
      | 21 -> pair (fun a b -> Obor (a, b))
      | 22 -> pair (fun a b -> Obxor (a, b))
      | 23 -> pair (fun a b -> Oshl (a, b))
      | 24 -> pair (fun a b -> Olshr (a, b))
      | 25 -> pair (fun a b -> Oashr (a, b))
      | 26 -> pair (fun a b -> Oconcat (a, b))
      | 27 ->
          let hi = u8 () in
          let lo = u8 () in
          Oextract (hi, lo, u32 ())
      | 28 ->
          let a = u32 () in
          let n = u32 () in
          if n > payload_len then fail "implausible range count";
          let ranges =
            Array.init n (fun _ ->
                let lo = i64 () in
                let hi = i64 () in
                (lo, hi))
          in
          Oinset (a, ranges)
      | _ -> fail "unknown op tag"
    in
    let f_ops = Array.init n_ops (fun _ -> decode_op ()) in
    let n_states = u32 () in
    if n_states > payload_len then fail "implausible state count";
    let decode_state () =
      let st_id = u32 () in
      let st_label = str () in
      let n_gates = u32 () in
      if n_gates > payload_len then fail "implausible gate count";
      let st_gates =
        Array.init n_gates (fun _ ->
            let g_byte = u32 () in
            let g_lo = u8 () in
            let g_hi = u8 () in
            { g_byte; g_lo; g_hi })
      in
      let st_root = u32 () in
      { st_id; st_label; st_gates; st_root; st_ops = [||] }
    in
    let states = Array.init n_states (fun _ -> decode_state ()) in
    if !pos <> payload_len then fail "trailing garbage in payload";
    let ft =
      validate
        {
          f_target;
          f_layout;
          f_message_size;
          f_unknowns;
          f_ops;
          f_states = states;
        }
    in
    Ok
      {
        ft with
        f_states =
          Array.map
            (fun st -> { st with st_ops = reachable ft.f_ops st.st_root })
            ft.f_states;
      }
  with
  | Decode_error msg -> Error msg
  | Invalid_program msg -> Error (Printf.sprintf "invalid filter program: %s" msg)
  | Invalid_argument msg -> Error (Printf.sprintf "malformed image: %s" msg)

let save ft ~file =
  let dir = Filename.dirname file in
  let tmp =
    Filename.concat dir
      (Printf.sprintf ".%s.tmp.%d" (Filename.basename file) (Unix.getpid ()))
  in
  match
    let oc = open_out_bin tmp in
    output_string oc (to_string ft);
    close_out oc;
    Sys.rename tmp file
  with
  | () -> Ok ()
  | exception Sys_error msg ->
      (try Sys.remove tmp with Sys_error _ -> ());
      Error msg

let load ~file =
  match
    let ic = open_in_bin file in
    let len = in_channel_length ic in
    let content = really_input_string ic len in
    close_in ic;
    content
  with
  | content -> (
      match of_string content with
      | Ok ft -> Ok ft
      | Error msg -> Error (Printf.sprintf "%s: %s" file msg))
  | exception Sys_error msg -> Error msg
  | exception End_of_file -> Error (Printf.sprintf "%s: truncated image" file)

let pp_summary ppf ft =
  Format.fprintf ppf
    "filter for %s (layout %s, %d-byte messages): %d states, %d ops, %d \
     gates, %d unknown leaves"
    ft.f_target ft.f_layout ft.f_message_size
    (Array.length ft.f_states)
    (Array.length ft.f_ops)
    (Array.fold_left (fun n st -> n + Array.length st.st_gates) 0 ft.f_states)
    ft.f_unknowns
