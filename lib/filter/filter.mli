(** Compile the extracted [¬PC] into a line-rate Trojan filter.

    The offline analysis ends with, per accepting server state, the Trojan
    query [pathS /\ AND_alive negate(pathCi)] over the symbolic message
    bytes (plus auxiliary variables: the fresh-renamed client inputs
    introduced by the negate operator, and any over-approximated server
    local state). This module lowers those queries into a self-contained
    decision DAG over concrete message bytes that a server front end can
    evaluate on every incoming message without a solver:

    - conjuncts whose variables are all message bytes lower directly to a
      shared op DAG (common subexpressions deduplicated via the hash-consed
      term ids) evaluated with concrete bitvector arithmetic;
    - auxiliary variables are eliminated at compile time: the one-point
      rule unifies the negate operator's [field = renamed-expression]
      equations with the server's byte terms, atom-level quantifier
      elimination resolves single-occurrence existentials (e.g. a
      [rid <> last_rid] freshness check against over-approximated local
      state), and what remains is projected onto its message bytes by
      solver model enumeration, collapsed to unsigned ranges;
    - per-state byte-interval gates (from {!Achilles_smt.Interval}) reject
      most messages with a handful of compares before the DAG runs.

    Residues the compiler cannot settle exactly become three-valued
    [Unknown] leaves — the filter then answers {!Unknown_state} rather than
    guessing, and {!unknown_leaves} reports how much of the predicate
    degraded. For the bundled targets compilation is exact (zero unknown
    leaves), which the differential test suite holds it to. *)

open Achilles_smt
open Achilles_symvm
open Achilles_core

type t

type verdict =
  | Accept
      (** Not a Trojan as far as the analysis knows: either no accepting
          server path matches the message, or every matching path's message
          is one a correct client can generate. *)
  | Trojan_suspect of int
      (** The message satisfies some accepting state's Trojan query; the
          payload is that state's id (see {!state_label}). *)
  | Unknown_state
      (** The verdict depends on something the filter does not track — an
          unknown-leaf residue of compilation, or a message whose length
          does not match the compiled layout. Never returned by a filter
          with {!unknown_leaves}[ = 0] and a correctly sized message. *)

val compile :
  ?enum_values:int ->
  target:string ->
  layout:Layout.t ->
  report:Search.report ->
  unit ->
  t
(** Compile every accepting state's Trojan query (via
    {!Search.trojan_queries}) into a filter. [enum_values] bounds the
    solver model enumeration used for irreducible existential residues
    (default 512 projected values); past the budget the residue becomes an
    [Unknown] leaf instead of an unsound guess. *)

val target : t -> string
val layout_name : t -> string
val message_size : t -> int
val state_count : t -> int
(** Accepting states with a satisfiable Trojan query (states proven
    Trojan-free compile away entirely). *)

val op_count : t -> int
val unknown_leaves : t -> int
(** Number of [Unknown] leaves in the DAG; 0 means the filter decides every
    correctly-sized message exactly. *)

val state_label : t -> int -> string option
(** Accept label of the given state id, if the filter knows the state. *)

(** {1 Evaluation}

    An evaluator owns the per-message scratch arrays (value cache and
    stamps), so the hot path allocates nothing but the verdict. One
    evaluator per thread/domain; an evaluator is not domain-safe. *)

type evaluator

val evaluator : t -> evaluator

val verdict_bytes : evaluator -> Stdlib.Bytes.t -> verdict
(** Verdict for a raw wire message. A message whose length differs from
    {!message_size} is [Unknown_state]. *)

val verdict : evaluator -> Bv.t array -> verdict
(** Verdict for a message given as 8-bit bytes (the representation the
    search's witnesses use). Raises [Invalid_argument] if an element is not
    8 bits wide; wrong length is [Unknown_state]. *)

(** {1 Serialization}

    A versioned binary image: magic + format version, a length-prefixed
    payload, and an MD5 of the payload. Decoding rejects — with an honest
    error, never a wrong verdict — truncated images, foreign or
    wrong-version files, bit flips anywhere in the payload, and
    structurally invalid programs (dangling op references, sort
    mismatches, out-of-range byte indices). *)

val to_string : t -> string

val of_string : string -> (t, string) result

val save : t -> file:string -> (unit, string) result
(** Atomic write: temp file in the destination directory, then rename. *)

val load : file:string -> (t, string) result

val pp_summary : Format.formatter -> t -> unit
