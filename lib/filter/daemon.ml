module Obs = Achilles_obs.Obs

type address = Unix_socket of string | Tcp of string * int

type stats = {
  connections : int;
  messages : int;
  accepts : int;
  trojan_suspects : int;
  unknowns : int;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "%d connections, %d messages: %d accept, %d trojan-suspect, %d unknown"
    s.connections s.messages s.accepts s.trojan_suspects s.unknowns

type conn = {
  fd : Unix.file_descr;
  buf : Buffer.t; (* bytes received, not yet consumed as frames *)
}

let be32_of buf off =
  let b i = Char.code (Buffer.nth buf (off + i)) in
  (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3

let response verdict =
  let out = Bytes.create 5 in
  let c, state =
    match verdict with
    | Filter.Accept -> ('A', 0xFFFFFFFF)
    | Filter.Trojan_suspect id -> ('T', id)
    | Filter.Unknown_state -> ('U', 0xFFFFFFFF)
  in
  Bytes.set out 0 c;
  Bytes.set out 1 (Char.chr ((state lsr 24) land 0xff));
  Bytes.set out 2 (Char.chr ((state lsr 16) land 0xff));
  Bytes.set out 3 (Char.chr ((state lsr 8) land 0xff));
  Bytes.set out 4 (Char.chr (state land 0xff));
  out

let write_all fd bytes =
  let len = Bytes.length bytes in
  let rec go off =
    if off < len then
      let n = Unix.write fd bytes off (len - off) in
      go (off + n)
  in
  go 0

exception Drop_connection

let run ?(max_frame = 1 lsl 20) ~filter ~address ~stop () =
  let ev = Filter.evaluator filter in
  let listener =
    match address with
    | Unix_socket path ->
        (match Unix.lstat path with
        | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
        | _ -> () (* refuse to clobber a non-socket; bind will fail honestly *)
        | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind fd (Unix.ADDR_UNIX path);
        fd
    | Tcp (host, port) ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
        fd
  in
  Unix.listen listener 16;
  let conns = ref [] in
  let st =
    ref
      {
        connections = 0;
        messages = 0;
        accepts = 0;
        trojan_suspects = 0;
        unknowns = 0;
      }
  in
  let record verdict =
    let s = !st in
    st :=
      (match verdict with
      | Filter.Accept ->
          Obs.count "filter.accept";
          { s with messages = s.messages + 1; accepts = s.accepts + 1 }
      | Filter.Trojan_suspect _ ->
          Obs.count "filter.trojan_suspect";
          {
            s with
            messages = s.messages + 1;
            trojan_suspects = s.trojan_suspects + 1;
          }
      | Filter.Unknown_state ->
          Obs.count "filter.unknown";
          { s with messages = s.messages + 1; unknowns = s.unknowns + 1 })
  in
  let scratch = Bytes.create 4096 in
  (* Consume every complete frame in [c.buf]; raises [Drop_connection] on an
     oversized frame. *)
  let drain_frames c =
    let consumed = ref 0 in
    let continue = ref true in
    while !continue do
      let available = Buffer.length c.buf - !consumed in
      if available < 4 then continue := false
      else
        let frame_len = be32_of c.buf !consumed in
        if frame_len > max_frame then raise Drop_connection
        else if available < 4 + frame_len then continue := false
        else begin
          let payload = Bytes.create frame_len in
          Buffer.blit c.buf (!consumed + 4) payload 0 frame_len;
          consumed := !consumed + 4 + frame_len;
          let verdict =
            Obs.span Obs.Filter_eval (fun () -> Filter.verdict_bytes ev payload)
          in
          record verdict;
          write_all c.fd (response verdict)
        end
    done;
    if !consumed > 0 then begin
      let rest = Buffer.sub c.buf !consumed (Buffer.length c.buf - !consumed) in
      Buffer.clear c.buf;
      Buffer.add_string c.buf rest
    end
  in
  let close_conn c =
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    conns := List.filter (fun c' -> c' != c) !conns
  in
  let service c =
    match Unix.read c.fd scratch 0 (Bytes.length scratch) with
    | 0 -> close_conn c
    | n ->
        Buffer.add_subbytes c.buf scratch 0 n;
        (try drain_frames c with
        | Drop_connection -> close_conn c
        | Unix.Unix_error _ -> close_conn c)
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        close_conn c
  in
  while not (stop ()) do
    let fds = listener :: List.map (fun c -> c.fd) !conns in
    match Unix.select fds [] [] 0.05 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, _, _ ->
        List.iter
          (fun fd ->
            if fd = listener then begin
              match Unix.accept listener with
              | conn_fd, _ ->
                  conns := { fd = conn_fd; buf = Buffer.create 256 } :: !conns;
                  st := { !st with connections = !st.connections + 1 }
              | exception Unix.Unix_error _ -> ()
            end
            else
              match List.find_opt (fun c -> c.fd = fd) !conns with
              | Some c -> service c
              | None -> ())
          readable
  done;
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) !conns;
  (try Unix.close listener with Unix.Unix_error _ -> ());
  (match address with
  | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ());
  !st
