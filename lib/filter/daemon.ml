module Obs = Achilles_obs.Obs

type address = Unix_socket of string | Tcp of string * int

type stats = {
  connections : int;
  messages : int;
  accepts : int;
  trojan_suspects : int;
  unknowns : int;
  dropped_frames : int;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "%d connections, %d messages: %d accept, %d trojan-suspect, %d unknown, %d \
     dropped"
    s.connections s.messages s.accepts s.trojan_suspects s.unknowns
    s.dropped_frames

(* Frame length sentinel: a client sending 0xFFFFFFFF as the length word asks
   for a stats reply instead of a verdict. Historically any frame over
   [max_frame] dropped the connection, so no well-behaved client ever sent
   this — reserving it is backward-compatible. *)
let stats_sentinel = 0xFFFFFFFF

type conn = {
  fd : Unix.file_descr;
  buf : Buffer.t; (* bytes received, not yet consumed as frames *)
  lat_hist : int array; (* per-connection verdict latency, log2-µs buckets *)
  mutable lat_sum : float;
}

(* A metrics (HTTP) connection: accumulate the request until the blank line,
   answer once, close. *)
type mconn = { m_fd : Unix.file_descr; m_buf : Buffer.t }

let be32_of buf off =
  let b i = Char.code (Buffer.nth buf (off + i)) in
  (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3

let response verdict =
  let out = Bytes.create 5 in
  let c, state =
    match verdict with
    | Filter.Accept -> ('A', 0xFFFFFFFF)
    | Filter.Trojan_suspect id -> ('T', id)
    | Filter.Unknown_state -> ('U', 0xFFFFFFFF)
  in
  Bytes.set out 0 c;
  Bytes.set out 1 (Char.chr ((state lsr 24) land 0xff));
  Bytes.set out 2 (Char.chr ((state lsr 16) land 0xff));
  Bytes.set out 3 (Char.chr ((state lsr 8) land 0xff));
  Bytes.set out 4 (Char.chr (state land 0xff));
  out

let write_all fd bytes =
  let len = Bytes.length bytes in
  let rec go off =
    if off < len then
      let n = Unix.write fd bytes off (len - off) in
      go (off + n)
  in
  go 0

exception Drop_connection

let bind_listener = function
  | Unix_socket path ->
      (match Unix.lstat path with
      | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
      | _ -> () (* refuse to clobber a non-socket; bind will fail honestly *)
      | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      fd
  | Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
      fd

let unlink_if_unix = function
  | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ()

let run ?(max_frame = 1 lsl 20) ?metrics ~filter ~address ~stop () =
  let ev = Filter.evaluator filter in
  let t_start = Unix.gettimeofday () in
  let listener = bind_listener address in
  Unix.listen listener 16;
  let mlistener =
    match metrics with
    | None -> None
    | Some addr ->
        let fd = bind_listener addr in
        Unix.listen fd 16;
        Some fd
  in
  let conns = ref [] in
  let mconns : mconn list ref = ref [] in
  let st =
    ref
      {
        connections = 0;
        messages = 0;
        accepts = 0;
        trojan_suspects = 0;
        unknowns = 0;
        dropped_frames = 0;
      }
  in
  (* Latency of connections already closed; a scrape folds live ones in. *)
  let drained_hist = Array.make Obs.histogram_buckets 0 in
  let drained_sum = ref 0. in
  let latency_totals () =
    let hist = Array.copy drained_hist in
    let sum = ref !drained_sum in
    List.iter
      (fun c ->
        Array.iteri (fun k v -> hist.(k) <- hist.(k) + v) c.lat_hist;
        sum := !sum +. c.lat_sum)
      !conns;
    (hist, !sum)
  in
  let record verdict =
    let s = !st in
    st :=
      (match verdict with
      | Filter.Accept ->
          Obs.count "filter.accept";
          { s with messages = s.messages + 1; accepts = s.accepts + 1 }
      | Filter.Trojan_suspect _ ->
          Obs.count "filter.trojan_suspect";
          {
            s with
            messages = s.messages + 1;
            trojan_suspects = s.trojan_suspects + 1;
          }
      | Filter.Unknown_state ->
          Obs.count "filter.unknown";
          { s with messages = s.messages + 1; unknowns = s.unknowns + 1 })
  in
  (* Line-based stats reply: the wire twin of the Prometheus exposition. *)
  let stats_text () =
    let s = !st in
    let hist, sum = latency_totals () in
    let count = Array.fold_left ( + ) 0 hist in
    let q p = Obs.estimate_quantile hist p *. 1e6 in
    Printf.sprintf
      "uptime_seconds %.3f\n\
       connections %d\n\
       messages %d\n\
       accepts %d\n\
       trojan_suspects %d\n\
       unknowns %d\n\
       dropped_frames %d\n\
       latency_count %d\n\
       latency_sum_seconds %.6f\n\
       latency_p50_us %.2f\n\
       latency_p95_us %.2f\n\
       latency_p99_us %.2f\n"
      (Unix.gettimeofday () -. t_start)
      s.connections s.messages s.accepts s.trojan_suspects s.unknowns
      s.dropped_frames count sum (q 0.5) (q 0.95) (q 0.99)
  in
  let stats_reply () =
    let text = stats_text () in
    let n = String.length text in
    let out = Bytes.create (4 + n) in
    Bytes.set out 0 (Char.chr ((n lsr 24) land 0xff));
    Bytes.set out 1 (Char.chr ((n lsr 16) land 0xff));
    Bytes.set out 2 (Char.chr ((n lsr 8) land 0xff));
    Bytes.set out 3 (Char.chr (n land 0xff));
    Bytes.blit_string text 0 out 4 n;
    out
  in
  let exposition () =
    let s = !st in
    let buf = Buffer.create 4096 in
    Obs.Prometheus.gauge buf ~name:"achilles_daemon_uptime_seconds"
      ~help:"Seconds since the daemon started"
      [ ([], Unix.gettimeofday () -. t_start) ];
    Obs.Prometheus.counter buf ~name:"achilles_daemon_connections_total"
      ~help:"Client connections accepted"
      [ ([], float_of_int s.connections) ];
    Obs.Prometheus.counter buf ~name:"achilles_daemon_messages_total"
      ~help:"Messages judged" [ ([], float_of_int s.messages) ];
    Obs.Prometheus.counter buf ~name:"achilles_daemon_verdicts_total"
      ~help:"Verdicts by outcome"
      [
        ([ ("verdict", "accept") ], float_of_int s.accepts);
        ([ ("verdict", "trojan_suspect") ], float_of_int s.trojan_suspects);
        ([ ("verdict", "unknown") ], float_of_int s.unknowns);
      ];
    Obs.Prometheus.counter buf ~name:"achilles_daemon_dropped_frames_total"
      ~help:"Connections dropped for oversized frames"
      [ ([], float_of_int s.dropped_frames) ];
    let hist, sum = latency_totals () in
    Obs.Prometheus.histogram buf ~name:"achilles_daemon_request_duration_seconds"
      ~help:"Per-verdict latency (log2-microsecond buckets)"
      [ ([], hist, sum) ];
    Buffer.add_string buf (Obs.Prometheus.of_snapshot (Obs.aggregate ()));
    Buffer.contents buf
  in
  let http_response () =
    let body = exposition () in
    Printf.sprintf
      "HTTP/1.0 200 OK\r\n\
       Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
       Content-Length: %d\r\n\
       \r\n\
       %s"
      (String.length body) body
  in
  let scratch = Bytes.create 4096 in
  (* Consume every complete frame in [c.buf]; raises [Drop_connection] on an
     oversized frame. *)
  let drain_frames c =
    let consumed = ref 0 in
    let continue = ref true in
    while !continue do
      let available = Buffer.length c.buf - !consumed in
      if available < 4 then continue := false
      else
        let frame_len = be32_of c.buf !consumed in
        if frame_len = stats_sentinel then begin
          consumed := !consumed + 4;
          write_all c.fd (stats_reply ())
        end
        else if frame_len > max_frame then raise Drop_connection
        else if available < 4 + frame_len then continue := false
        else begin
          let payload = Bytes.create frame_len in
          Buffer.blit c.buf (!consumed + 4) payload 0 frame_len;
          consumed := !consumed + 4 + frame_len;
          (* Manual timing instead of [Obs.span]: one pair of clock reads
             feeds the phase slice and the per-connection histogram. *)
          let t0 = Unix.gettimeofday () in
          let verdict = Filter.verdict_bytes ev payload in
          let dt = Unix.gettimeofday () -. t0 in
          Obs.record_span Obs.Filter_eval dt;
          let b = Obs.bucket_of_seconds dt in
          c.lat_hist.(b) <- c.lat_hist.(b) + 1;
          c.lat_sum <- c.lat_sum +. dt;
          record verdict;
          write_all c.fd (response verdict)
        end
    done;
    if !consumed > 0 then begin
      let rest = Buffer.sub c.buf !consumed (Buffer.length c.buf - !consumed) in
      Buffer.clear c.buf;
      Buffer.add_string c.buf rest
    end
  in
  let close_conn c =
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    Array.iteri (fun k v -> drained_hist.(k) <- drained_hist.(k) + v) c.lat_hist;
    drained_sum := !drained_sum +. c.lat_sum;
    conns := List.filter (fun c' -> c' != c) !conns
  in
  let service c =
    match Unix.read c.fd scratch 0 (Bytes.length scratch) with
    | 0 -> close_conn c
    | n ->
        Buffer.add_subbytes c.buf scratch 0 n;
        (try drain_frames c with
        | Drop_connection ->
            st := { !st with dropped_frames = !st.dropped_frames + 1 };
            Obs.count "filter.dropped_frame";
            close_conn c
        | Unix.Unix_error _ -> close_conn c)
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        close_conn c
  in
  let close_mconn mc =
    (try Unix.close mc.m_fd with Unix.Unix_error _ -> ());
    mconns := List.filter (fun mc' -> mc' != mc) !mconns
  in
  let answer_mconn mc =
    (try write_all mc.m_fd (Bytes.of_string (http_response ()))
     with Unix.Unix_error _ -> ());
    close_mconn mc
  in
  let has_request_end buf =
    let s = Buffer.contents buf in
    let n = String.length s in
    let rec go i =
      if i + 3 >= n then false
      else if s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n'
      then true
      else go (i + 1)
    in
    go 0
  in
  let service_mconn mc =
    match Unix.read mc.m_fd scratch 0 (Bytes.length scratch) with
    | 0 ->
        (* EOF before the blank line: answer anyway if anything arrived. *)
        if Buffer.length mc.m_buf > 0 then answer_mconn mc else close_mconn mc
    | n ->
        Buffer.add_subbytes mc.m_buf scratch 0 n;
        if has_request_end mc.m_buf || Buffer.length mc.m_buf > 8192 then
          answer_mconn mc
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        close_mconn mc
  in
  while not (stop ()) do
    let fds =
      (listener :: List.map (fun c -> c.fd) !conns)
      @ (match mlistener with Some fd -> [ fd ] | None -> [])
      @ List.map (fun mc -> mc.m_fd) !mconns
    in
    match Unix.select fds [] [] 0.05 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, _, _ ->
        List.iter
          (fun fd ->
            if fd = listener then begin
              match Unix.accept listener with
              | conn_fd, _ ->
                  conns :=
                    {
                      fd = conn_fd;
                      buf = Buffer.create 256;
                      lat_hist = Array.make Obs.histogram_buckets 0;
                      lat_sum = 0.;
                    }
                    :: !conns;
                  st := { !st with connections = !st.connections + 1 }
              | exception Unix.Unix_error _ -> ()
            end
            else if mlistener = Some fd then begin
              match Unix.accept fd with
              | m_fd, _ ->
                  mconns := { m_fd; m_buf = Buffer.create 256 } :: !mconns
              | exception Unix.Unix_error _ -> ()
            end
            else
              match List.find_opt (fun c -> c.fd = fd) !conns with
              | Some c -> service c
              | None -> (
                  match List.find_opt (fun mc -> mc.m_fd = fd) !mconns with
                  | Some mc -> service_mconn mc
                  | None -> ()))
          readable
  done;
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) !conns;
  List.iter
    (fun mc -> try Unix.close mc.m_fd with Unix.Unix_error _ -> ())
    !mconns;
  (try Unix.close listener with Unix.Unix_error _ -> ());
  (match mlistener with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  unlink_if_unix address;
  (match metrics with Some addr -> unlink_if_unix addr | None -> ());
  !st
