(** Serve a compiled filter over a socket.

    A single-process [select] loop speaking a length-prefixed framing:

    - request: a 4-byte big-endian unsigned length, then that many message
      bytes;
    - response: 5 bytes — one verdict character ([{'A'|'T'|'U'}] for
      accept / trojan-suspect / unknown-state) followed by a 4-byte
      big-endian state id ([0xFFFFFFFF] when there is none).

    Two telemetry surfaces ride on the same loop:

    - a [STATS] wire command: a frame whose length word is the reserved
      sentinel [0xFFFFFFFF] (no payload) gets back a length-prefixed
      [key value] text block — uptime, connection/message/verdict counts,
      dropped frames, and latency count/sum/p50/p95/p99 — instead of a
      verdict (historically any frame over [max_frame] dropped the
      connection, so no existing client ever sent the sentinel);
    - an optional [?metrics] listener serving Prometheus text exposition
      (format 0.0.4) over minimal HTTP/1.0: daemon families
      ([achilles_daemon_uptime_seconds], [..._connections_total],
      [..._messages_total], [..._verdicts_total{verdict=...}],
      [..._dropped_frames_total], [..._request_duration_seconds] histogram)
      followed by the full process {!Achilles_obs.Obs.Prometheus.of_snapshot}
      exposition. One scrape = one short-lived connection.

    A frame whose length does not match the filter's message size gets an
    honest ['U']; a frame longer than [max_frame] drops the connection and
    counts in [dropped_frames]. Every verdict is timed once and charged to
    the {!Achilles_obs.Obs.Filter_eval} phase and to a per-connection
    latency histogram (folded into the scrape output), and bumps a
    [filter.accept] / [filter.trojan_suspect] / [filter.unknown] counter. *)

type address =
  | Unix_socket of string  (** path; an existing socket file is replaced *)
  | Tcp of string * int  (** bind address and port, [SO_REUSEADDR] set *)

type stats = {
  connections : int;
  messages : int;
  accepts : int;
  trojan_suspects : int;
  unknowns : int;
  dropped_frames : int;
}

val run :
  ?max_frame:int ->
  ?metrics:address ->
  filter:Filter.t ->
  address:address ->
  stop:(unit -> bool) ->
  unit ->
  stats
(** Serve until [stop ()] turns true (polled a few times a second and
    between frames; [EINTR] from a signal wakes the poll immediately).
    Returns after every connection is closed and, for Unix sockets (verdict
    and metrics), the socket files are unlinked. [max_frame] defaults to
    1 MiB. [metrics] adds the Prometheus scrape listener. *)

val pp_stats : Format.formatter -> stats -> unit
