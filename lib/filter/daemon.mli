(** Serve a compiled filter over a socket.

    A single-process [select] loop speaking a length-prefixed framing:

    - request: a 4-byte big-endian unsigned length, then that many message
      bytes;
    - response: 5 bytes — one verdict character ([{'A'|'T'|'U'}] for
      accept / trojan-suspect / unknown-state) followed by a 4-byte
      big-endian state id ([0xFFFFFFFF] when there is none).

    A frame whose length does not match the filter's message size gets an
    honest ['U']; a frame longer than [max_frame] drops the connection.
    Every verdict runs under an {!Achilles_obs.Obs.Filter_eval} span and
    bumps a [filter.accept] / [filter.trojan_suspect] / [filter.unknown]
    counter, so latency histograms and verdict counts surface through the
    ordinary observability snapshot. *)

type address =
  | Unix_socket of string  (** path; an existing socket file is replaced *)
  | Tcp of string * int  (** bind address and port, [SO_REUSEADDR] set *)

type stats = {
  connections : int;
  messages : int;
  accepts : int;
  trojan_suspects : int;
  unknowns : int;
}

val run :
  ?max_frame:int ->
  filter:Filter.t ->
  address:address ->
  stop:(unit -> bool) ->
  unit ->
  stats
(** Serve until [stop ()] turns true (polled a few times a second and
    between frames; [EINTR] from a signal wakes the poll immediately).
    Returns after every connection is closed and, for a Unix socket, the
    socket file is unlinked. [max_frame] defaults to 1 MiB. *)

val pp_stats : Format.formatter -> stats -> unit
