(* Rediscovering the PBFT MAC attack (§6.2-§6.3), then measuring it.

   The replica checks tags, sizes, digest, client id and request freshness —
   but never the MAC authenticators. Correct clients only ever produce the
   valid authenticator bytes, so any request with a different MAC is a
   Trojan message. Backups that do check the MAC cannot tell whether the
   client or the primary is faulty and must run the expensive recovery
   protocol: a malicious client can throttle the whole service.

     dune exec examples/pbft_mac_attack.exe *)

open Achilles_core
open Achilles_symvm
open Achilles_targets
open Achilles_runtime

let () =
  Format.printf "=== PBFT: the MAC attack ===@.@.";

  Format.printf "1. Achilles analysis of the replica...@.";
  let interp =
    (* the replica's request-history structure, over-approximated with
       unconstrained symbolic state — the §3.4 annotation mode *)
    Local_state.over_approximate ~vars:[ ("last_rid", 16) ]
      Interp.default_config
  in
  let config =
    {
      Search.default_config with
      Search.mask = Some Pbft_model.analysis_mask;
      Search.interp = interp;
      Search.witnesses_per_path = 2;
    }
  in
  let t0 = Unix.gettimeofday () in
  let analysis =
    Achilles.analyze ~search_config:config ~layout:Pbft_model.layout
      ~clients:[ Pbft_model.client ] ~server:Pbft_model.replica ()
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  let trojans = Achilles.trojans analysis in
  Format.printf "   completed in %.2fs (the paper reports \"a few seconds\")@."
    elapsed;
  Format.printf "   %d Trojan witnesses across %d accepting paths@."
    (List.length trojans)
    analysis.Achilles.report.Search.search_stats.Search.accepting_paths;
  (match trojans with
  | t :: _ ->
      Format.printf "@.   a witness:@.%a@."
        (Report.pp_witness Pbft_model.layout)
        t.Search.witness;
      Format.printf "   MAC field differs from the only value correct clients emit: %b@."
        (not (Pbft_model.has_valid_mac t.Search.witness))
  | [] -> ());

  Format.printf "@.2. Impact in a live deployment (abstract protocol time units):@.";
  let clean = Pbft_deploy.run_workload ~requests:500 () in
  Format.printf
    "   clean workload:    %d committed, %d recoveries, cost %d, throughput %.2f@."
    clean.Pbft_deploy.committed clean.Pbft_deploy.recoveries
    clean.Pbft_deploy.total_cost clean.Pbft_deploy.throughput;
  List.iter
    (fun every ->
      let attacked = Pbft_deploy.run_workload ~malicious_every:every ~requests:500 () in
      Format.printf
        "   1/%d bad MACs:      %d committed, %d recoveries, cost %d, throughput %.2f (%.1fx slower)@."
        every attacked.Pbft_deploy.committed attacked.Pbft_deploy.recoveries
        attacked.Pbft_deploy.total_cost attacked.Pbft_deploy.throughput
        (clean.Pbft_deploy.throughput /. attacked.Pbft_deploy.throughput))
    [ 10; 4; 2 ];
  Format.printf
    "@.One corrupted authenticator per few requests is enough to slow every@.\
     correct client down — the vulnerability of Clement et al. [10],@.\
     rediscovered here purely from the implementations.@."
