(* The three local-state modes of §3.4, on the paper's own example: a Paxos
   acceptor that has entered phase 2.

   Once value 7 is locked, correct proposers only send Accept(b, 7); the
   acceptor, however, takes any Accept with a high enough ballot — so every
   Accept carrying a different value is a Trojan message. The acceptor's
   behaviour depends on its local state (the promised ballot), which each
   mode controls differently.

     dune exec examples/paxos_local_state.exe *)

open Achilles_smt
open Achilles_core
open Achilles_symvm
open Achilles_targets

let analyze ~interp ~clients label =
  let config =
    {
      Search.default_config with
      Search.mask = Some [ "mtype"; "ballot"; "value" ];
      Search.interp = interp;
      Search.witnesses_per_path = 3;
    }
  in
  let analysis =
    Achilles.analyze ~search_config:config ~layout:Paxos_model.layout ~clients
      ~server:Paxos_model.acceptor ()
  in
  let trojans = Achilles.trojans analysis in
  Format.printf "-- %s: %d Trojan witnesses --@." label (List.length trojans);
  List.iter
    (fun (t : Search.trojan) ->
      let field name = Layout.field_value Paxos_model.layout t.Search.witness name in
      Format.printf "   mtype=%Ld ballot=%Ld value=%Ld@."
        (Bv.value (field "mtype")) (Bv.value (field "ballot"))
        (Bv.value (field "value")))
    trojans;
  Format.printf "@."

let () =
  Format.printf "=== Paxos acceptor: controlling local state (§3.4) ===@.@.";
  Format.printf
    "Scenario: phase 1 promised ballot 5; the protocol locked value 7.@.\
     Correct proposers only send Accept(ballot, 7).@.@.";

  (* Mode 1: Concrete Local State — run the phase-1 prefix concretely and
     analyze from the resulting state. Answers "what can go wrong RIGHT
     HERE", for one concrete scenario. *)
  let interp =
    Local_state.concrete ~prefix:(Paxos_model.phase1_prefix ~ballot:5)
      Interp.default_config
  in
  analyze ~interp
    ~clients:[ Paxos_model.proposer_concrete ~value:7 ]
    "Concrete local state (promised = 5, value = 7)";

  (* Mode 2: Constructed Symbolic Local State — feed the acceptor a
     symbolic earlier round so a single analysis covers every concrete
     proposal value at once. *)
  let pc, _ =
    Client_extract.extract ~layout:Paxos_model.layout
      [ Paxos_model.proposer_symbolic ]
  in
  let first = List.hd pc.Predicate.paths in
  let rounds =
    [
      {
        State.dst = Term.int ~width:8 0;
        State.payload = first.Predicate.message;
        State.path_at_send = List.rev first.Predicate.constraints;
        State.during_analysis = false;
      };
    ]
  in
  let interp = Local_state.constructed_symbolic ~rounds Interp.default_config in
  analyze ~interp
    ~clients:[ Paxos_model.proposer_concrete ~value:7 ]
    "Constructed symbolic local state (symbolic round 1)";

  (* Mode 3: Over-approximate Symbolic Local State — annotate the promised
     ballot as "any value up to 10" without running anything. *)
  let interp =
    Local_state.over_approximate ~vars:[ ("promised", 16) ]
      ~constrain:(fun m ->
        [ Term.ule (State.String_map.find "promised" m) (Term.int ~width:16 10) ])
      Interp.default_config
  in
  analyze ~interp
    ~clients:[ Paxos_model.proposer_concrete ~value:7 ]
    "Over-approximate symbolic local state (promised <= 10)";

  Format.printf
    "In all three modes the witnesses are Accept messages whose value field@.\
     differs from 7 (or Prepare messages, which phase-2 proposers never@.\
     send): the value-agreement check the acceptor forgot.@."
