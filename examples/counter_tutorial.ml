(* The complete program from docs/TUTORIAL.md, kept compiling so the
   tutorial cannot rot: a counter service whose server forgets the lower
   bound on the amount and ignores the flags byte.

     dune exec examples/counter_tutorial.exe *)

open Achilles_symvm
open Achilles_core

let layout =
  Layout.make ~name:"counter" [ ("op", 1); ("amount", 2); ("flags", 1) ]

let client =
  let open Builder in
  prog "counter-client" ~buffers:[ ("msg", 4) ]
    (List.concat
       [
         [
           read_input "amount" ~width:16;
           when_ (v "amount" <: i16 1) [ halt ];
           when_ (v "amount" >: i16 10) [ halt ];
         ];
         Layout.store_field layout "op" ~buf:"msg" ~value:(i8 1);
         Layout.store_field layout "amount" ~buf:"msg" ~value:(v "amount");
         Layout.store_field layout "flags" ~buf:"msg" ~value:(i8 0);
         [ send (i8 0) "msg"; halt ];
       ])

let server =
  let open Builder in
  let field name = Layout.field_expr layout name ~buf:"msg" in
  prog "counter-server" ~globals:[ ("counter", 16) ]
    ~buffers:[ ("msg", 4); ("ack", 1) ]
    [
      receive "msg";
      when_ (field "op" <>: i8 1) [ mark_reject "bad-op" ];
      when_ (field "amount" >: i16 100) [ mark_reject "too-big" ];
      set "counter" (v "counter" +: field "amount");
      send (i8 1) "ack";
      mark_accept "add";
    ]

let () =
  let analysis =
    Achilles.analyze
      ~search_config:
        { Search.default_config with Search.witnesses_per_path = 4 }
      ~layout ~clients:[ client ] ~server ()
  in
  Format.printf "%a@.@." Achilles.pp_summary analysis;
  List.iter
    (fun t -> Format.printf "%a@." (Report.pp_trojan layout) t)
    (Achilles.trojans analysis);
  Format.printf "@.-- client grammar --@.%a@." Report.pp_grammar
    (Report.describe_grammar analysis.Achilles.client)
