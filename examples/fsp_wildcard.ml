(* The FSP wildcard bug (§6.3), end to end.

   1. Analyze the FSP server against wildcard-aware clients: since clients
      always glob-expand '*' (with no escape syntax), no correct client can
      send a literal '*' in a source path — yet the server accepts any
      printable character. Achilles produces such a message as a Trojan.
   2. Show how the trap springs in a live deployment: a bit flip creates a
      file named "f*" on the server, and the only way a correct client can
      remove it destroys every other f-prefixed file along the way. The
      Trojan message deletes it surgically.

     dune exec examples/fsp_wildcard.exe *)

open Achilles_smt
open Achilles_core
open Achilles_runtime
open Achilles_targets

let show t = Format.printf "   server files: [%s]@." (String.concat "; " (Fsp_deploy.list_files t))

let () =
  Format.printf "=== FSP wildcard Trojan (§6.3) ===@.@.";

  Format.printf "1. Analysis with glob-aware clients...@.";
  let config =
    {
      Search.default_config with
      Search.mask = Some Fsp_model.analysis_mask;
      Search.witnesses_per_path = 30;
    }
  in
  let clients = Fsp_model.clients ~model_globbing:true () in
  let analysis =
    Achilles.analyze ~search_config:config ~layout:Fsp_model.layout ~clients
      ~server:Fsp_model.server ()
  in
  let trojans = Achilles.trojans analysis in
  let wildcarded =
    List.filter
      (fun (t : Search.trojan) -> Fsp_model.contains_wildcard t.Search.witness)
      trojans
  in
  Format.printf "   %d Trojan witnesses, %d carrying a literal '*'@."
    (List.length trojans) (List.length wildcarded);
  (match wildcarded with
  | t :: _ ->
      Format.printf "   a wildcard Trojan, as found by the analysis:@.%a@."
        (Report.pp_witness Fsp_model.layout)
        t.Search.witness
  | [] -> Format.printf "   (no wildcard witness in this run)@.");

  Format.printf "@.2. How the trap is created: one bit flip in flight.@.";
  Format.printf "   'j' = 0x%02x, '*' = 0x%02x — they differ in a single bit.@."
    (Char.code 'j') (Char.code '*');
  let deploy = Fsp_deploy.create ~files:[ "f1"; "f2"; "bank" ] () in
  show deploy;
  (match Fsp_deploy.build_message (Fsp_deploy.command_named "put") "fj" with
  | Ok payload ->
      let f = Achilles_symvm.Layout.field Fsp_model.layout "buf" in
      payload.(f.Achilles_symvm.Layout.offset + 1) <-
        Bv.logxor payload.(f.Achilles_symvm.Layout.offset + 1)
          (Bv.of_int ~width:8 0x40);
      (match Fsp_deploy.deliver_raw deploy payload with
      | Fsp_deploy.Accepted { path; _ } ->
          Format.printf "   client sent 'put fj'; the server received 'put %s'@." path
      | Fsp_deploy.Rejected -> Format.printf "   rejected?!@.")
  | Error e -> Format.printf "   %s@." e);
  show deploy;

  Format.printf "@.3. A correct client cannot remove 'f*' safely:@.";
  let victim = Fsp_deploy.create ~files:[ "f1"; "f2"; "bank"; "f*" ] () in
  let r =
    Fsp_deploy.exec victim ~command:(Fsp_deploy.command_named "del") ~arg:"f*"
  in
  Format.printf "   'del f*' glob-expanded to: [%s]@."
    (String.concat "; " r.Fsp_deploy.expanded);
  show victim;
  Format.printf "   ... f1 and f2 are gone too (no escape syntax exists).@.";

  Format.printf "@.4. The Trojan message removes it surgically:@.";
  let clean = Fsp_deploy.create ~files:[ "f1"; "f2"; "bank"; "f*" ] () in
  (match Fsp_deploy.build_message (Fsp_deploy.command_named "del") "f*" with
  | Ok payload -> (
      match Fsp_deploy.deliver_raw clean payload with
      | Fsp_deploy.Accepted { affected; _ } ->
          Format.printf "   injected literal 'del f*': deleted [%s]@."
            (String.concat "; " affected)
      | Fsp_deploy.Rejected -> Format.printf "   rejected?!@.")
  | Error e -> Format.printf "   %s@." e);
  show clean;
  Format.printf
    "@.A semantic bug: nothing crashes, no memory is corrupted — which is@.\
     why only the client/server predicate difference exposes it.@."
