(* Fault injection with discovered Trojan messages — the paper's intended
   workflow (§1, §4.1): run Achilles offline, then inject the concrete
   witnesses into a live deployment during a "fire drill" and watch what
   they do, weeding out harmless ones.

     dune exec examples/fault_injection.exe *)

open Achilles_core
open Achilles_runtime
open Achilles_targets

let () =
  Format.printf "=== Fire drill: injecting FSP Trojan messages ===@.@.";

  Format.printf "1. Offline analysis (all 8 FSP utilities vs the server)...@.";
  let config =
    {
      Search.default_config with
      Search.mask = Some Fsp_model.analysis_mask;
      Search.witnesses_per_path = 16;
      Search.distinct_by = Some Fsp_model.block_class;
    }
  in
  let analysis =
    Achilles.analyze ~search_config:config ~layout:Fsp_model.layout
      ~clients:(Fsp_model.clients ()) ~server:Fsp_model.server ()
  in
  let trojans = Achilles.trojans analysis in
  Format.printf "   %d concrete Trojan witnesses (80 ground-truth types)@.@."
    (List.length trojans);

  Format.printf "2. Replaying every witness against the live server...@.";
  let confirmation = Inject.confirm ~server:Fsp_model.server trojans in
  Format.printf "   %a@.@." Inject.pp_confirmation confirmation;

  Format.printf "3. Observing effects on a deployment with real files...@.";
  let deploy = Fsp_deploy.create ~files:[ "data"; "logs" ] () in
  let interesting =
    (* pick a handful of distinct commands *)
    List.filteri (fun i _ -> i mod 16 = 0) trojans
  in
  List.iter
    (fun (t : Search.trojan) ->
      let w = t.Search.witness in
      match Fsp_deploy.deliver_raw deploy w with
      | Fsp_deploy.Accepted { command; path; affected } ->
          let extra = Fsp_deploy.extra_payload w in
          Format.printf
            "   [accepted] %-6s path=%S affected=[%s]%s@."
            command path
            (String.concat "; " affected)
            (if extra = "" then ""
             else Printf.sprintf "  (+%d covert bytes: %s)"
                 (String.length extra / 2) extra)
      | Fsp_deploy.Rejected -> Format.printf "   [rejected]@.")
    interesting;
  Format.printf "   files after the drill: [%s]@.@."
    (String.concat "; " (Fsp_deploy.list_files deploy));

  Format.printf "4. The Amazon-S3 scenario in miniature (§1): silent corruption@.";
  Format.printf "   propagating through an intelligible message.@.";
  let net = Net.create () in
  let server_node = Node.create Fsp_model.server in
  Net.add_node net ~addr:0 server_node;
  (* a single stuck bit on the wire, on the first payload byte *)
  let f = Achilles_symvm.Layout.field Fsp_model.layout "buf" in
  Net.set_fault net
    (Some (Net.bit_flip_fault ~byte:f.Achilles_symvm.Layout.offset ~bit:6 ()));
  (match Fsp_deploy.build_message (Fsp_deploy.command_named "put") "j" with
  | Ok payload ->
      Net.inject net ~dst:0 payload;
      ignore (Net.run_to_quiescence net);
      let _, status = List.hd (Node.history server_node) in
      Format.printf
        "   client sent 'put j'; one bit flipped in flight; the server said: %s@."
        (Achilles_symvm.State.status_string status);
      Format.printf
        "   the corrupted message was still intelligible and was accepted —@.\
        \   precisely the class of failure Trojan-message analysis targets.@."
  | Error e -> Format.printf "   %s@." e);
