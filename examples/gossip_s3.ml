(* The paper's opening story (§1) end to end: the Amazon-S3-style gossip
   corruption, found as a Trojan message under Concrete Local State (§3.4)
   and fixed exactly the way the post-mortem describes.

     dune exec examples/gossip_s3.exe *)

open Achilles_smt
open Achilles_core
open Achilles_symvm
open Achilles_runtime
open Achilles_targets

let observed = 2 (* this deployment has seen two failures *)

let analyze ~hardened =
  (* Concrete Local State: run each reporter through the deployment's
     failure trace, then analyze the gossip round from that state *)
  let client_interp =
    Local_state.concrete
      ~incoming:(List.init observed (fun _ -> Gossip_model.failure_event))
      ~prefix:Gossip_model.reporter_prefix Interp.default_config
  in
  let config =
    {
      Search.default_config with
      Search.mask = Some Gossip_model.analysis_mask;
      Search.witnesses_per_path = 6;
    }
  in
  Achilles.analyze ~search_config:config ~client_interp
    ~layout:Gossip_model.layout ~clients:[ Gossip_model.reporter ]
    ~server:(Gossip_model.aggregator ~hardened ()) ()

let () =
  Format.printf "=== Gossip state corruption: the Amazon S3 scenario (§1) ===@.@.";
  Format.printf
    "Deployment: %d reporters, %d observed failures this epoch. Correct@.\
     reporters therefore gossip count = %d and nothing else.@.@."
    Gossip_model.n_reporters observed observed;

  Format.printf "1. Achilles, Concrete Local State mode:@.";
  let analysis = analyze ~hardened:false in
  let trojans = Achilles.trojans analysis in
  Format.printf "   %d Trojan report witnesses, e.g.:@." (List.length trojans);
  (match trojans with
  | t :: _ ->
      Format.printf "%a@." (Report.pp_witness Gossip_model.layout) t.Search.witness;
      Format.printf "   every witness reports a count <> %d: %b@.@." observed
        (List.for_all
           (fun (t : Search.trojan) ->
             Gossip_model.is_trojan ~observed t.Search.witness)
           trojans)
  | [] -> ());

  Format.printf "2. The failure in flight: one corrupted bit, still intelligible.@.";
  let aggregator_node = Node.create (Gossip_model.aggregator ()) in
  let net = Net.create () in
  Net.add_node net ~addr:0 aggregator_node;
  (* a correct reporter's message, with bit 6 of the count byte flipped:
     count 2 becomes 66 *)
  let f = Layout.field Gossip_model.layout "count" in
  Net.set_fault net (Some (Net.bit_flip_fault ~byte:f.Layout.offset ~bit:6 ()));
  let report =
    let bytes = Array.make Gossip_model.message_size (Bv.zero 8) in
    bytes.(0) <- Bv.of_int ~width:8 Gossip_model.msg_report;
    bytes.(1) <- Bv.of_int ~width:8 1;
    bytes.(2) <- Bv.of_int ~width:8 observed;
    bytes.(3) <- Bv.zero 8;
    bytes.(4) <- Bv.of_int ~width:8 Gossip_model.current_epoch;
    bytes
  in
  Net.inject net ~dst:0 report;
  ignore (Net.run_to_quiescence net);
  let merged = List.assoc "merged_count" (Node.globals aggregator_node) in
  let emergency = List.assoc "emergency" (Node.globals aggregator_node) in
  Format.printf
    "   reporter sent count=%d; the aggregator merged count=%Ld and@.\
    \   emergency mode is now %s — corruption propagated into shared state.@.@."
    observed (Bv.value merged)
    (if Bv.value emergency = 1L then "ON" else "off");

  Format.printf "3. The post-mortem fix: reject implausible counts.@.";
  let hardened = analyze ~hardened:true in
  Format.printf
    "   hardened aggregator: %d Trojan witnesses remain (counts within the@.\
    \   cluster size but wrong for this scenario — scenario-specific checks@.\
    \   would be needed to close those too).@."
    (List.length (Achilles.trojans hardened));
  let node = Node.create (Gossip_model.aggregator ~hardened:true ()) in
  let corrupted = Array.copy report in
  corrupted.(f.Layout.offset) <-
    Bv.logxor corrupted.(f.Layout.offset) (Bv.of_int ~width:8 0x40);
  let outcome = Node.deliver node corrupted in
  Format.printf "   the corrupted report is now: %s@."
    (State.status_string outcome.Concrete.status)
