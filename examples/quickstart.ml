(* Quickstart: run Achilles on the paper's working example (Figures 2-3).

   The server handles READ/WRITE requests but forgets to reject negative
   addresses on READs; the client validates addresses before sending. Every
   READ with a negative address is therefore a Trojan message, and Achilles
   finds it from the two programs alone — no specification needed.

     dune exec examples/quickstart.exe *)

open Achilles_core
open Achilles_targets

let () =
  Format.printf "=== Achilles quickstart: the read/write working example ===@.@.";

  (* Phase 1+2+3 in one call: extract the client predicate, preprocess,
     search the server. We mask the analysis to the address field, as the
     paper does when a developer wants to audit one field. *)
  let config =
    { Search.default_config with Search.mask = Some [ "address" ] }
  in
  let analysis =
    Achilles.analyze ~search_config:config ~layout:Rw_example.layout
      ~clients:[ Rw_example.client ] ~server:Rw_example.server ()
  in

  Format.printf "-- client predicate (PC), as extracted from the client --@.";
  Format.printf "%a@." Predicate.pp_client_predicate analysis.Achilles.client;

  Format.printf "-- analysis summary --@.%a@.@." Achilles.pp_summary analysis;

  match Achilles.trojans analysis with
  | [] -> Format.printf "No Trojan messages found (unexpected!).@."
  | trojans ->
      Format.printf "-- Trojan messages --@.";
      List.iter
        (fun t ->
          Format.printf "%a@." (Report.pp_trojan Rw_example.layout) t;
          let addr =
            Achilles_symvm.Layout.field_value Rw_example.layout
              t.Search.witness "address"
          in
          Format.printf
            "  address as a signed integer: %Ld  (negative => the missing check)@."
            (Achilles_smt.Bv.to_signed_int64 addr);
          Format.printf "  confirmed against ground truth: %b@.@."
            (Rw_example.is_trojan t.Search.witness))
        trojans;
      Format.printf
        "The WRITE path was pruned during exploration: all its messages are@.\
         generable by correct clients, so no Trojan can reach its accept@.\
         marker — exactly the incremental search of the paper's Figure 7.@."
